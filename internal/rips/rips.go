// Package rips reimplements the RIPS static analyzer (Dahse & Holz, NDSS
// 2014) at the fidelity the phpSAFE paper's comparison depends on
// (DSN 2015, §II, §IV-V).
//
// RIPS differs from phpSAFE in algorithm and in capability envelope, and
// both differences matter for reproducing the paper's tables:
//
//   - Backward-directed taint analysis: RIPS starts at sensitive sinks and
//     slices backwards through assignments and calls to decide whether
//     attacker data can reach them.
//   - Comprehensive simulation of PHP built-in features: RIPS understands
//     the standard sanitizers, and — unlike phpSAFE — it also refines taint
//     through validation guards (is_numeric) and restrictive preg_replace
//     patterns, giving it fewer false positives on such code.
//   - Analyzes all functions, including ones never called from plugin code
//     (§V.A: "both phpSAFE and RIPS are able to detect vulnerabilities in
//     functions that are not called").
//   - NO object-oriented analysis: "the tool does not parse PHP objects,
//     consequently it misses encapsulated vulnerabilities" (§II). Method
//     calls and property fetches are opaque: never sources, sinks or
//     sanitizers.
//   - NO CMS framework knowledge: WordPress sources (get_option,
//     $wpdb->get_results) are invisible (false negatives) and WordPress
//     sanitizers (esc_html) are unknown pass-throughs (false positives).
//   - Analyzes each file independently; it does not expand include
//     closures, so files that exhaust phpSAFE's include budget still get
//     analyzed (the paper's explanation for RIPS's 2014 advantage, §V.A).
package rips

import (
	"context"
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/config"
	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/phpast"
	"repro/internal/pipeline"
)

// Engine is the RIPS-like analyzer. It is immutable and safe for
// concurrent use on distinct targets.
type Engine struct {
	cfg *config.Compiled
	// rec receives metrics and spans; nil disables instrumentation.
	rec *obs.Recorder
}

var _ analyzer.Analyzer = (*Engine)(nil)

// New returns a RIPS engine. RIPS only knows generic PHP, so the natural
// configuration is config.Compile(config.Generic()).
func New(cfg *config.Compiled) *Engine { return &Engine{cfg: cfg} }

// NewDefault returns a RIPS engine with its stock generic-PHP knowledge.
func NewDefault() *Engine { return New(config.Compile(config.Generic())) }

// Name returns the tool name used in reports.
func (e *Engine) Name() string { return "RIPS" }

// OptionsFingerprint identifies the configuration the engine scans with,
// so cached results are never reused across different rule sets.
func (e *Engine) OptionsFingerprint() string { return "rips|cfg:" + e.cfg.Digest() }

// WithRecorder returns a copy of the engine that records per-plugin
// model/slice stage spans and parse metrics into rec.
func (e *Engine) WithRecorder(rec *obs.Recorder) *Engine {
	clone := *e
	clone.rec = rec
	return &clone
}

// Analyze scans one plugin target file by file with a background
// context and default budgets.
func (e *Engine) Analyze(target *analyzer.Target) (*analyzer.Result, error) {
	return e.AnalyzeContext(context.Background(), target, nil)
}

// AnalyzeContext scans one plugin target under a context and resource
// budgets (analyzer.ContextAnalyzer). Per-file analysis is
// crash-isolated; a halted governor stops the scan between files and
// inside the backward-tracing recursion.
func (e *Engine) AnalyzeContext(ctx context.Context, target *analyzer.Target, opts *analyzer.ScanOptions) (*analyzer.Result, error) {
	if target == nil {
		return nil, fmt.Errorf("rips: nil target")
	}
	gov := govern.New(ctx, opts, e.rec)
	workers := opts.EffectiveFileWorkers()
	res := &analyzer.Result{Tool: e.Name(), Target: target.Name}

	scan := e.rec.StartNamedSpan("scan:", target.Name, nil)

	// RIPS builds a program model per file but resolves user functions
	// across the whole plugin (inter-procedural analysis).
	msp := scan.StartChild("model")
	model := buildModel(target, e.rec, msp, gov, workers)
	msp.EndAndObserve("stage_model_seconds")

	// The model is read-only from here on, so per-file backward slicing
	// fans across the worker pool: each file accumulates into its own
	// Result shard under its worker's forked governor, and the shards
	// are merged in sorted path order — byte-identical to a serial run.
	tsp := scan.StartChild("taint")
	shards := make([]*analyzer.Result, len(model.fileOrder))
	govern.ForkJoin(gov, workers, len(model.fileOrder), func(child *govern.Governor, _, idx int) {
		child.CheckNow()
		if child.ScanHalted() {
			return
		}
		file := model.fileOrder[idx]
		shard := &analyzer.Result{}
		shards[idx] = shard
		fa := &fileAnalysis{eng: e, model: model, res: shard, gov: child}
		ok := govern.Protect(child, file, shard, func() {
			child.BeginFile(file)
			fa.analyzeFile(file)
		})
		if child.EndFile() {
			shard.FilesFailed = append(shard.FilesFailed, file)
			shard.Errors = append(shard.Errors, fmt.Sprintf(
				"%s: file time slice exhausted; file not fully analyzed", file))
			return
		}
		if ok && !child.ScanHalted() {
			shard.FilesAnalyzed++
			shard.LinesAnalyzed += model.files[file].Lines
		}
	})
	for _, shard := range shards {
		if shard != nil {
			res.Merge(shard)
		}
	}
	tsp.EndAndObserve("stage_taint_seconds")
	res.Dedup()
	err := gov.Finish(res)
	scan.End()
	return res, err
}

// model is the whole-target inventory RIPS uses for inter-procedural
// backward slicing.
type model struct {
	files     map[string]*phpast.File
	fileOrder []string
	// funcs maps lower-case function name → its flattened body events.
	funcs map[string]*funcModel
	// callSites maps function name → the call events referencing it.
	callSites map[string][]callSite
	// mains maps file path → the flattened top-level pseudo-function.
	mains map[string]*funcModel
}

// funcModel is one function's flattened event list.
type funcModel struct {
	name   string
	file   string
	params []phpast.Param
	events []event
	// returns indexes the events that are return statements.
	returns []int
}

// callSite is one call of a user function, with enough context to trace
// arguments backwards in the caller.
type callSite struct {
	fn    *funcModel // caller ("" top-level pseudo-function)
	index int        // event index of the call
	args  []phpast.Expr
}

// eventKind distinguishes flattened program events.
type eventKind int

const (
	evAssign eventKind = iota + 1
	evSink
	evGuard
	evCall
	evForeach
)

// event is one step of a function's linearized body. RIPS's control-flow
// graph is approximated by flattening blocks in source order, which is
// sufficient for the backward def-use slicing it performs.
type event struct {
	kind eventKind
	line int
	file string

	// evAssign: lhs var name (coarse: base variable) and rhs expression.
	lhsVar string
	rhs    phpast.Expr
	concat bool // .= compound assignment

	// evSink: sink name, vulnerability class, checked expression.
	sink     string
	vuln     analyzer.VulnClass
	sinkExpr phpast.Expr

	// evGuard: variable validated by is_numeric/intval-style checks.
	guardVar string

	// evCall: callee name and argument expressions.
	callee string
	args   []phpast.Expr

	// evForeach: collection expression flowing into the loop variable.
	collExpr phpast.Expr
}

// buildModel parses all files and flattens every function and every
// top-level flow. The recorder and parent span (both possibly nil)
// observe the per-file parses; the governor (possibly nil) bounds them.
func buildModel(target *analyzer.Target, rec *obs.Recorder, parent *obs.Span, gov *govern.Governor, workers int) *model {
	m := &model{
		funcs:     make(map[string]*funcModel),
		callSites: make(map[string][]callSite),
		mains:     make(map[string]*funcModel, len(target.Files)),
	}
	m.files, _ = pipeline.ParseFiles(target.Files, nil, rec, parent, gov, workers)
	for _, sf := range target.Files {
		m.fileOrder = append(m.fileOrder, sf.Path)
	}
	// Deterministic order.
	for i := 1; i < len(m.fileOrder); i++ {
		for j := i; j > 0 && m.fileOrder[j] < m.fileOrder[j-1]; j-- {
			m.fileOrder[j], m.fileOrder[j-1] = m.fileOrder[j-1], m.fileOrder[j]
		}
	}

	// Collect function declarations target-wide. RIPS skips methods —
	// it does not parse objects.
	for _, path := range m.fileOrder {
		file := m.files[path]
		phpast.InspectStmts(file.Stmts, func(n phpast.Node) bool {
			if fd, ok := n.(*phpast.FuncDecl); ok && fd.Name != "" {
				if _, dup := m.funcs[fd.Name]; !dup {
					fm := &funcModel{name: fd.Name, file: path, params: fd.Params}
					flattenStmts(fd.Body, path, fm)
					m.funcs[fd.Name] = fm
				}
				return false
			}
			if _, ok := n.(*phpast.ClassDecl); ok {
				return false // OOP is invisible to RIPS
			}
			return true
		})
	}

	// Flatten every file's top-level flow, then index call sites for
	// inter-procedural backward tracing (top-level calls included, so a
	// sink inside a function defined in another file still resolves).
	for _, path := range m.fileOrder {
		fm := &funcModel{name: "{main:" + path + "}", file: path}
		flattenStmts(m.files[path].Stmts, path, fm)
		m.mains[path] = fm
	}
	for _, fm := range m.funcs {
		m.indexCalls(fm)
	}
	for _, path := range m.fileOrder {
		m.indexCalls(m.mains[path])
	}
	return m
}

// indexCalls registers the call events of fm into the global call-site
// index.
func (m *model) indexCalls(fm *funcModel) {
	for i, ev := range fm.events {
		if ev.kind == evCall && ev.callee != "" {
			m.callSites[ev.callee] = append(m.callSites[ev.callee], callSite{
				fn: fm, index: i, args: ev.args,
			})
		}
	}
}

// topLevel returns a file's flattened main flow.
func (m *model) topLevel(path string) *funcModel {
	return m.mains[path]
}

// flattenStmts appends the events of a statement list in source order.
func flattenStmts(stmts []phpast.Stmt, file string, fm *funcModel) {
	for _, s := range stmts {
		flattenStmt(s, file, fm)
	}
}

// flattenStmt appends the events of one statement.
func flattenStmt(s phpast.Stmt, file string, fm *funcModel) {
	switch st := s.(type) {
	case *phpast.ExprStmt:
		flattenExpr(st.X, file, fm)
	case *phpast.Echo:
		for _, arg := range st.Args {
			flattenExpr(arg, file, fm)
			fm.events = append(fm.events, event{
				kind: evSink, line: arg.Pos(), file: file,
				sink: "echo", vuln: analyzer.XSS, sinkExpr: arg,
			})
		}
	case *phpast.Block:
		flattenStmts(st.List, file, fm)
	case *phpast.If:
		flattenGuards(st.Cond, file, fm)
		flattenExpr(st.Cond, file, fm)
		flattenStmts(st.Then, file, fm)
		for _, ei := range st.Elseifs {
			flattenGuards(ei.Cond, file, fm)
			flattenExpr(ei.Cond, file, fm)
			flattenStmts(ei.Body, file, fm)
		}
		flattenStmts(st.Else, file, fm)
	case *phpast.While:
		flattenGuards(st.Cond, file, fm)
		flattenExpr(st.Cond, file, fm)
		flattenStmts(st.Body, file, fm)
	case *phpast.DoWhile:
		flattenStmts(st.Body, file, fm)
		flattenExpr(st.Cond, file, fm)
	case *phpast.For:
		for _, e := range st.Init {
			flattenExpr(e, file, fm)
		}
		for _, e := range st.Cond {
			flattenExpr(e, file, fm)
		}
		flattenStmts(st.Body, file, fm)
		for _, e := range st.Post {
			flattenExpr(e, file, fm)
		}
	case *phpast.Foreach:
		flattenExpr(st.Expr, file, fm)
		if v, ok := st.Value.(*phpast.Var); ok {
			fm.events = append(fm.events, event{
				kind: evForeach, line: st.Pos(), file: file,
				lhsVar: v.Name, collExpr: st.Expr,
			})
		}
		flattenStmts(st.Body, file, fm)
	case *phpast.Switch:
		flattenExpr(st.Cond, file, fm)
		for _, c := range st.Cases {
			if c.Cond != nil {
				flattenExpr(c.Cond, file, fm)
			}
			flattenStmts(c.Body, file, fm)
		}
	case *phpast.Return:
		if st.X != nil {
			flattenExpr(st.X, file, fm)
			fm.events = append(fm.events, event{
				kind: evAssign, line: st.Pos(), file: file,
				lhsVar: retVar, rhs: st.X,
			})
			fm.returns = append(fm.returns, len(fm.events)-1)
		}
	case *phpast.Unset:
		for _, v := range st.Vars {
			if vv, ok := v.(*phpast.Var); ok {
				fm.events = append(fm.events, event{
					kind: evAssign, line: st.Pos(), file: file,
					lhsVar: vv.Name, rhs: nil,
				})
			}
		}
	case *phpast.Throw:
		flattenExpr(st.X, file, fm)
	case *phpast.Try:
		flattenStmts(st.Body, file, fm)
		for _, c := range st.Catches {
			flattenStmts(c.Body, file, fm)
		}
		flattenStmts(st.Finally, file, fm)
	case *phpast.Global, *phpast.StaticVars, *phpast.InlineHTML,
		*phpast.Break, *phpast.Continue, *phpast.BadStmt,
		*phpast.FuncDecl, *phpast.ClassDecl:
		// Declarations handled in buildModel; the rest carry no events.
	}
}

// retVar is the pseudo-variable holding a function's return value.
const retVar = "\x00return"

// flattenGuards extracts validation guards from a condition: RIPS
// simulates built-in validation functions (is_numeric, ctype_digit,
// is_int) and treats guarded variables as safe below the check.
func flattenGuards(cond phpast.Expr, file string, fm *funcModel) {
	phpast.Inspect(cond, func(n phpast.Node) bool {
		fc, ok := n.(*phpast.FuncCall)
		if !ok {
			return true
		}
		switch fc.Name {
		case "is_numeric", "is_int", "is_float", "ctype_digit", "ctype_alnum":
			if len(fc.Args) == 1 {
				if v, ok := fc.Args[0].Value.(*phpast.Var); ok {
					fm.events = append(fm.events, event{
						kind: evGuard, line: fc.Pos(), file: file, guardVar: v.Name,
					})
				}
			}
		}
		return true
	})
}

// flattenExpr appends assignment, call and sink events found inside an
// expression, in evaluation order.
func flattenExpr(e phpast.Expr, file string, fm *funcModel) {
	switch x := e.(type) {
	case nil:
		return
	case *phpast.Assign:
		flattenExpr(x.RHS, file, fm)
		if base, ok := baseVar(x.LHS); ok {
			fm.events = append(fm.events, event{
				kind: evAssign, line: x.Pos(), file: file,
				lhsVar: base, rhs: x.RHS,
				concat: x.Op == ".=",
			})
		}
	case *phpast.FuncCall:
		for _, a := range x.Args {
			flattenExpr(a.Value, file, fm)
		}
		if x.Name == "" {
			return
		}
		fm.events = append(fm.events, event{
			kind: evCall, line: x.Pos(), file: file,
			callee: x.Name, args: argExprs(x.Args),
		})
	case *phpast.PrintExpr:
		flattenExpr(x.X, file, fm)
		fm.events = append(fm.events, event{
			kind: evSink, line: x.Pos(), file: file,
			sink: "print", vuln: analyzer.XSS, sinkExpr: x.X,
		})
	case *phpast.ExitExpr:
		if x.X != nil {
			flattenExpr(x.X, file, fm)
			fm.events = append(fm.events, event{
				kind: evSink, line: x.Pos(), file: file,
				sink: "exit", vuln: analyzer.XSS, sinkExpr: x.X,
			})
		}
	case *phpast.Binary:
		flattenExpr(x.L, file, fm)
		flattenExpr(x.R, file, fm)
	case *phpast.Unary:
		flattenExpr(x.X, file, fm)
	case *phpast.Ternary:
		flattenExpr(x.Cond, file, fm)
		flattenExpr(x.Then, file, fm)
		flattenExpr(x.Else, file, fm)
	case *phpast.Cast:
		flattenExpr(x.X, file, fm)
	case *phpast.InterpString:
		for _, p := range x.Parts {
			flattenExpr(p, file, fm)
		}
	case *phpast.ArrayLit:
		for _, it := range x.Items {
			flattenExpr(it.Key, file, fm)
			flattenExpr(it.Value, file, fm)
		}
	case *phpast.IndexFetch:
		flattenExpr(x.Base, file, fm)
		flattenExpr(x.Index, file, fm)
	case *phpast.MethodCall:
		// Objects are invisible, but argument expressions still execute.
		for _, a := range x.Args {
			flattenExpr(a.Value, file, fm)
		}
	case *phpast.StaticCall:
		for _, a := range x.Args {
			flattenExpr(a.Value, file, fm)
		}
	case *phpast.New:
		for _, a := range x.Args {
			flattenExpr(a.Value, file, fm)
		}
	case *phpast.IncludeExpr:
		flattenExpr(x.Path, file, fm)
	case *phpast.Closure:
		flattenStmts(x.Body, file, fm)
	}
}

// argExprs extracts argument value expressions.
func argExprs(args []phpast.Arg) []phpast.Expr {
	out := make([]phpast.Expr, len(args))
	for i, a := range args {
		out[i] = a.Value
	}
	return out
}

// baseVar resolves the base variable of an assignable expression. Object
// property targets return false: RIPS does not track them.
func baseVar(e phpast.Expr) (string, bool) {
	switch x := e.(type) {
	case *phpast.Var:
		return x.Name, true
	case *phpast.IndexFetch:
		return baseVar(x.Base)
	default:
		return "", false
	}
}

// sinksOf returns the sink declarations a call event triggers: config
// sinks (mysql_query and friends) keyed by callee name.
func (e *Engine) sinksOf(ev event) []config.Sink {
	if ev.kind != evCall {
		return nil
	}
	return e.cfg.FunctionSinks(ev.callee)
}
