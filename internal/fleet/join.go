// Worker auto-registration. Instead of a static -fleet-workers list,
// each worker announces itself to the coordinator: POST
// /internal/v1/join with the address it serves on. The coordinator
// admits the member into the ring (Fleet.AddWorker), journals it so
// the membership survives a coordinator restart, and from then on the
// heartbeat monitor owns its liveness. Announcements retry with the
// jobs backoff until the coordinator is reachable and then repeat on a
// slow cadence — re-announcement is idempotent, and it heals the
// membership of a coordinator restarted without its journal.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/jobs"
)

// AnnounceInterval is the steady-state re-announcement cadence after
// the first successful join.
const AnnounceInterval = 15 * time.Second

// joinRequest is the worker→coordinator registration body.
type joinRequest struct {
	Advertise string `json:"advertise"`
}

// NewCoordinatorHandler wraps the coordinator's API with the
// fleet-internal join endpoint:
//
//	POST /internal/v1/join  register an announcing worker; idempotent
//
// Everything else falls through to api.
func NewCoordinatorHandler(api http.Handler, fl *Fleet) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/v1/join", func(w http.ResponseWriter, r *http.Request) {
		var jr joinRequest
		if err := json.NewDecoder(r.Body).Decode(&jr); err != nil || jr.Advertise == "" {
			http.Error(w, `{"error":"join body must carry advertise"}`, http.StatusBadRequest)
			return
		}
		added := fl.AddWorker(jr.Advertise)
		fl.mu.Lock()
		members := fl.ring.Members()
		fl.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"joined":  added,
			"members": members,
		})
	})
	mux.Handle("/", api)
	return mux
}

// Announce registers advertise with the coordinator and keeps the
// registration fresh. It blocks: retries with the jittered jobs
// backoff until the first success (a worker that boots before its
// coordinator just keeps knocking), then re-announces every
// AnnounceInterval until ctx is cancelled. Run it on its own
// goroutine.
func Announce(ctx context.Context, client *http.Client, coordinator, advertise string, policy jobs.RetryPolicy, log *slog.Logger) {
	if client == nil {
		client = &http.Client{}
	}
	if log == nil {
		log = slog.Default()
	}
	log = log.With("component", "fleet_announce")
	attempt := 0
	for {
		err := announceOnce(ctx, client, coordinator, advertise)
		if err == nil {
			if attempt > 0 {
				log.Info("announced to coordinator", "coordinator", coordinator, "advertise", advertise)
			}
			attempt = 0
			select {
			case <-ctx.Done():
				return
			case <-time.After(AnnounceInterval):
			}
			continue
		}
		attempt++
		backoff := policy.Backoff(attempt)
		log.Warn("announce failed, retrying",
			"coordinator", coordinator, "error", err.Error(),
			"attempt", attempt, "backoff_ms", backoff.Milliseconds())
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
	}
}

// announceOnce performs one join round-trip.
func announceOnce(ctx context.Context, client *http.Client, coordinator, advertise string) error {
	body, _ := json.Marshal(joinRequest{Advertise: advertise})
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		coordinator+"/internal/v1/join", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errWorkerStatus(resp.StatusCode)
	}
	return nil
}
