package fleet

// In-process fleet end-to-end tests: real coordinator server.Server
// dispatching to real worker server.Servers over httptest HTTP, with
// worker death simulated by closing a worker's listener before the
// monitor has ever probed it.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/scancache"
	"repro/internal/server"
)

// vulnerablePHP trips the phpSAFE engine deterministically.
const vulnerablePHP = `<?php
$path = $_GET['img_path'];
echo 'Created ' . $path . '.';
$user = $_POST['user'];
mysql_query("SELECT * FROM users WHERE login='" . $user . "'");
`

// scanView is the slice of the scan envelope these tests assert on;
// Result stays raw for byte-identity comparison.
type scanView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Worker string          `json:"worker"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
}

// newWorker boots one fleet worker: a full server stack with a
// single-attempt budget behind the worker handler.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{Workers: 1, QueueSize: 16, Recorder: rec})
	api := server.New(server.Config{
		Pool:     pool,
		Cache:    scancache.New(1<<20, rec),
		Recorder: rec,
		Retry:    jobs.RetryPolicy{MaxAttempts: 1},
	})
	ts := httptest.NewServer(NewWorkerHandler(api, pool, ""))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.Shutdown(ctx)
	})
	return ts
}

// newCoordinator boots a coordinator over the given worker URLs with
// fast heartbeat and retry tuning.
func newCoordinator(t *testing.T, workerURLs []string) (*httptest.Server, *Fleet, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{Workers: 4, QueueSize: 32, Recorder: rec})
	fl := New(Config{
		Workers:           workerURLs,
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectAfter:      1,
		DeadAfter:         2,
		ReconnectBackoff:  jobs.RetryPolicy{Base: 20 * time.Millisecond, Cap: 100 * time.Millisecond},
		Recorder:          rec,
	})
	api := server.New(server.Config{
		Pool:        pool,
		Cache:       scancache.New(1<<20, rec),
		Recorder:    rec,
		Retry:       jobs.RetryPolicy{MaxAttempts: 6, Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond},
		Dispatch:    fl.Dispatch,
		FleetStatus: fl.Status,
	})
	fl.Start()
	ts := httptest.NewServer(api)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.Shutdown(ctx)
		fl.Stop()
	})
	return ts, fl, rec
}

func submitScan(t *testing.T, base, name, php string) scanView {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"name":  name,
		"files": map[string]string{name + ".php": php},
	})
	resp, err := http.Post(base+"/v1/scans", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %s = HTTP %d", name, resp.StatusCode)
	}
	var sc scanView
	if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
		t.Fatal(err)
	}
	return sc
}

func waitSettled(t *testing.T, base, id string) scanView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/scans/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sc scanView
		err = json.NewDecoder(resp.Body).Decode(&sc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch sc.Status {
		case "done", "failed", "cancelled", "quarantined":
			return sc
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("scan %s never settled", id)
	return scanView{}
}

func scanTrace(t *testing.T, base, id string) []obs.Event {
	t.Helper()
	resp, err := http.Get(base + "/v1/scans/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr.Events
}

// TestFleetDispatchRouting: scans submitted to the coordinator settle
// done on fleet workers, results are byte-identical to a standalone
// daemon's for the same content, routing is deterministic per digest,
// every dispatched scan's trace records the dispatch, and /readyz
// reports both workers alive.
func TestFleetDispatchRouting(t *testing.T) {
	t.Parallel()
	w1, w2 := newWorker(t), newWorker(t)
	coord, _, rec := newCoordinator(t, []string{w1.URL, w2.URL})

	// Standalone baseline for byte-identity.
	saRec := obs.NewRecorder()
	saPool := jobs.New(jobs.Config{Workers: 1, QueueSize: 16, Recorder: saRec})
	standalone := httptest.NewServer(server.New(server.Config{
		Pool: saPool, Cache: scancache.New(1<<20, saRec), Recorder: saRec,
	}))
	t.Cleanup(func() {
		standalone.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		saPool.Shutdown(ctx)
	})

	workersSeen := map[string]bool{}
	for _, name := range []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"} {
		sc := submitScan(t, coord.URL, name, vulnerablePHP+"// "+name+"\n")
		got := waitSettled(t, coord.URL, sc.ID)
		if got.Status != "done" {
			t.Fatalf("scan %s = %s (%s), want done", name, got.Status, got.Error)
		}
		if got.Worker != w1.URL && got.Worker != w2.URL {
			t.Fatalf("scan %s ran on %q, want a fleet worker", name, got.Worker)
		}
		workersSeen[got.Worker] = true

		ref := waitSettled(t, standalone.URL,
			submitScan(t, standalone.URL, name, vulnerablePHP+"// "+name+"\n").ID)
		if string(got.Result) != string(ref.Result) {
			t.Errorf("scan %s: fleet result differs from standalone:\nfleet: %s\nsolo:  %s",
				name, got.Result, ref.Result)
		}

		var dispatched bool
		for _, ev := range scanTrace(t, coord.URL, sc.ID) {
			if ev.Type == EvDispatched && ev.Detail == got.Worker {
				dispatched = true
			}
		}
		if !dispatched {
			t.Errorf("scan %s: trace has no %s event naming %s", name, EvDispatched, got.Worker)
		}

		// Identical resubmission: served from the coordinator's cache,
		// no second dispatch.
		again := submitScan(t, coord.URL, name, vulnerablePHP+"// "+name+"\n")
		if !again.Cached || again.Status != "done" {
			t.Errorf("scan %s resubmission = cached=%v status=%s, want cache hit", name, again.Cached, again.Status)
		}
	}
	if len(workersSeen) != 2 {
		t.Logf("note: all scans routed to one worker (legal for 6 digests, just unlikely)")
	}

	if got := rec.Gauge("fleet_workers_alive").Value(); got != 2 {
		t.Errorf("fleet_workers_alive = %v, want 2", got)
	}
	resp, err := http.Get(coord.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
	}
	var ready struct {
		Fleet struct {
			Workers []WorkerStatus `json:"workers"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if len(ready.Fleet.Workers) != 2 {
		t.Fatalf("/readyz fleet workers = %+v, want 2 entries", ready.Fleet.Workers)
	}
	for _, ws := range ready.Fleet.Workers {
		if ws.State != StateAlive {
			t.Errorf("/readyz worker %s state = %s, want alive", ws.Addr, ws.State)
		}
	}
}

// TestFleetWorkerDeathHandoff: with one worker down from the start
// (the coordinator optimistically assumes it alive), every scan still
// settles done on the survivor; scans whose ring owner was the dead
// worker record ownership_transferred + resubmitted_to_peer in their
// trace, the handoff counter moves, and /readyz degrades to reporting
// the dead worker while staying 200.
func TestFleetWorkerDeathHandoff(t *testing.T) {
	t.Parallel()
	w1, w2 := newWorker(t), newWorker(t)
	deadURL := w2.URL
	w2.Close() // dead before the coordinator's first probe

	coord, _, rec := newCoordinator(t, []string{w1.URL, deadURL})

	ids := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		name := "handoff" + string(rune('a'+i))
		sc := submitScan(t, coord.URL, name, vulnerablePHP+"// "+name+"\n")
		ids = append(ids, sc.ID)
	}
	handoffs := 0
	for _, id := range ids {
		got := waitSettled(t, coord.URL, id)
		if got.Status != "done" {
			t.Fatalf("scan %s = %s (%s), want done despite dead worker", id, got.Status, got.Error)
		}
		if got.Worker != w1.URL {
			t.Fatalf("scan %s ran on %q, want survivor %s", id, got.Worker, w1.URL)
		}
		var transferred, resubmitted bool
		for _, ev := range scanTrace(t, coord.URL, id) {
			switch ev.Type {
			case EvOwnershipTransferred:
				transferred = true
				if !strings.Contains(ev.Detail, deadURL) || !strings.Contains(ev.Detail, w1.URL) {
					t.Errorf("scan %s: %s detail = %q, want %q -> %q", id, ev.Type, ev.Detail, deadURL, w1.URL)
				}
			case EvResubmittedToPeer:
				resubmitted = true
				if ev.Detail != w1.URL {
					t.Errorf("scan %s: %s detail = %q, want %s", id, ev.Type, ev.Detail, w1.URL)
				}
			}
		}
		if transferred != resubmitted {
			t.Errorf("scan %s: transferred=%v resubmitted=%v, want both or neither", id, transferred, resubmitted)
		}
		if transferred {
			handoffs++
		}
	}
	if handoffs == 0 {
		t.Error("no scan recorded an ownership handoff; 12 digests all routed to the survivor is implausible")
	}
	if got := rec.Counter("fleet_handoffs_total").Value(); got < int64(handoffs) {
		t.Errorf("fleet_handoffs_total = %d, want >= %d", got, handoffs)
	}

	// The dead worker is reported dead, but one survivor keeps /readyz
	// at 200.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(coord.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var ready struct {
			Fleet struct {
				Workers []WorkerStatus `json:"workers"`
			} `json:"fleet"`
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&ready)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusOK {
			t.Fatalf("/readyz = %d with a live worker, want 200", code)
		}
		states := map[string]string{}
		for _, ws := range ready.Fleet.Workers {
			states[ws.Addr] = ws.State
		}
		if states[deadURL] == StateDead && states[w1.URL] == StateAlive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never reported %s dead: %+v", deadURL, states)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := rec.Gauge("fleet_workers_alive").Value(); got != 1 {
		t.Errorf("fleet_workers_alive = %v, want 1", got)
	}
}

// TestFleetAllWorkersDead: with every worker unreachable the
// coordinator stays up, /readyz goes 503 with per-worker detail, and
// an accepted scan exhausts its budget and quarantines instead of
// wedging.
func TestFleetAllWorkersDead(t *testing.T) {
	t.Parallel()
	ghost := httptest.NewServer(http.NotFoundHandler())
	url := ghost.URL
	ghost.Close()

	coord, _, rec := newCoordinator(t, []string{url})

	// The monitor's first sweep marks the worker dead within a few
	// probe intervals.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(coord.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz = %d, never degraded to 503 with all workers dead", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := rec.Gauge("fleet_workers_alive").Value(); got != 0 {
		t.Errorf("fleet_workers_alive = %v, want 0", got)
	}

	sc := submitScan(t, coord.URL, "stranded", vulnerablePHP)
	got := waitSettled(t, coord.URL, sc.ID)
	if got.Status != "quarantined" {
		t.Fatalf("scan with no workers = %s (%s), want quarantined", got.Status, got.Error)
	}
	if !strings.Contains(got.Error, "no workers reachable") {
		t.Errorf("quarantine error = %q, want it to name the unreachable fleet", got.Error)
	}
}
