// Package fleet turns phpsafed into a horizontally scaled scan
// service: one coordinator owning the client API and the durable
// journal, N workers each running the full jobs-pool + analyzer stack
// with their own scancache and incremental store.
//
// The coordinator reuses internal/server wholesale — acceptance,
// journaling, retry budgets, in-flight dedup, trace timelines — and
// replaces only the innermost step: instead of running the engine
// locally, server.Config.Dispatch hands the attempt to this package,
// which routes the scan's content digest over a consistent-hash ring
// (ring.go) to its owning worker and executes it there via HTTP.
// Because routing is by content digest, each worker's caches become
// shards of one fleet-wide tier rather than N duplicated copies.
//
// Failure handling composes from parts that already exist. A worker
// that stops answering heartbeats walks alive → suspect → dead
// (health.go); dispatches to it fail with retryable errors, so the
// coordinator's jobs-level retry re-runs the attempt, Dispatch
// re-picks the ring owner among live workers, and the scan lands on
// the next shard — that re-pick IS the ownership handoff, recorded in
// the scan's trace as ownership_transferred + resubmitted_to_peer.
// Coordinator crash-recovery is untouched: accepted scans are
// journaled before dispatch, so replay resubmits them with their
// attempt budget carried forward exactly as in the single-process
// daemon.
package fleet

import (
	"context"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// Trace event types for fleet transitions, appended to the same flight
// recorder (and with the same ordering discipline) as the server's
// scan lifecycle events: an event is appended before the action it
// announces, so timelines read dispatched → (work) → settled.
const (
	// EvDispatched: the coordinator is sending this attempt to a
	// worker (Detail names the worker).
	EvDispatched = "dispatched"
	// EvHeartbeatLost: a worker stopped answering heartbeats. Appended
	// once per transition at daemon level (no scan id), and per scan
	// when an in-flight dispatch is severed by the loss.
	EvHeartbeatLost = "heartbeat_lost"
	// EvOwnershipTransferred: a scan's ring ownership moved because
	// its previous owner is unreachable (Detail: "old -> new").
	EvOwnershipTransferred = "ownership_transferred"
	// EvResubmittedToPeer: the attempt is being re-sent to the new
	// owner (always follows EvOwnershipTransferred for the same scan).
	EvResubmittedToPeer = "resubmitted_to_peer"
	// EvHedgeFired: the primary dispatch outlived the hedge delay (or
	// replication is on) and a duplicate dispatch is being sent to the
	// next ring owner (Detail names it).
	EvHedgeFired = "hedge_fired"
	// EvHedgeWon: one branch of a hedged dispatch settled first and its
	// result was taken (Detail names the winning worker).
	EvHedgeWon = "hedge_won"
	// EvHedgeCancelled: the losing branch of a hedged dispatch was
	// cancelled (Detail names the cancelled worker).
	EvHedgeCancelled = "hedge_cancelled"
	// EvAdopted: a restarted coordinator found this replayed scan still
	// running on a worker and attached to it instead of resubmitting
	// (Detail: "worker worker_scan_id").
	EvAdopted = "adopted"
	// EvWorkerJoined: a worker announced itself and entered the ring.
	// Daemon-level (no scan id); Detail names the worker.
	EvWorkerJoined = "worker_joined"
)

// Worker health states. A worker starts alive (the fleet probes
// immediately, so a configured-but-absent worker is demoted within one
// interval), turns suspect after SuspectAfter consecutive misses, and
// dead after DeadAfter. Dead workers leave the dispatch ring and their
// in-flight dispatches are severed so the coordinator's retry machinery
// can hand the scans to the next owner.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

// Config shapes a coordinator's fleet.
type Config struct {
	// Workers are the worker base URLs (e.g. "http://127.0.0.1:9101").
	// They are the consistent-hash ring members; order is irrelevant.
	// The set may start empty when workers auto-register via the join
	// endpoint (AddWorker).
	Workers []string
	// Replicas is the virtual-node count per worker at weight 1
	// (DefaultReplicas when 0).
	Replicas int
	// HeartbeatInterval is the probe cadence (default 1s).
	HeartbeatInterval time.Duration
	// SuspectAfter / DeadAfter are the consecutive-miss thresholds for
	// the alive→suspect and →dead transitions (defaults 1 and 3).
	SuspectAfter int
	DeadAfter    int
	// ReviveAfter is the consecutive-success threshold for the
	// suspect/dead → alive transition (default 2): a flapping link must
	// answer K probes in a row before the worker re-enters the ring, so
	// one lucky packet cannot thrash ownership back and forth. Suppressed
	// revivals count in fleet_flaps_suppressed_total.
	ReviveAfter int
	// HedgeDelay, when positive, arms hedged dispatch: an attempt still
	// unsettled after the delay is duplicated to the next ring owner and
	// the first result wins. Zero disables hedging (unless
	// DispatchReplicas forces it).
	HedgeDelay time.Duration
	// DispatchReplicas, when >= 2, replicates every dispatch to the two
	// first live ring owners immediately (a zero hedge delay), trading
	// duplicated work for the best possible tail latency.
	DispatchReplicas int
	// ReconnectBackoff schedules probes of a dead worker: the same
	// jittered exponential backoff the jobs pool uses between scan
	// attempts, so a flapping worker is probed gently rather than
	// hammered every interval. Zero values take the jobs defaults
	// (100ms base, 5s cap); MaxAttempts is ignored — reconnect probing
	// never gives up.
	ReconnectBackoff jobs.RetryPolicy
	// Journal, when set, persists the member set: every AddWorker
	// appends a fleet_member record, and the server's compaction calls
	// MemberRecords to carry the set across WAL resets, so a restarted
	// coordinator rebuilds its ring before any worker re-announces.
	Journal *durable.Journal
	// Recorder receives fleet metrics and trace events (required).
	Recorder *obs.Recorder
	// Logger receives fleet lifecycle logs (nil: slog.Default()).
	Logger *slog.Logger
	// HTTPClient performs dispatches and probes (nil: a client with
	// sane fleet-internal timeouts).
	HTTPClient *http.Client
}

// workerHealth is the monitor's view of one worker.
type workerHealth struct {
	addr      string
	state     string
	misses    int       // consecutive probe/dispatch failures
	revives   int       // consecutive successes while suspect/dead
	lastBeat  time.Time // last successful heartbeat or dispatch
	nextProbe time.Time // dead workers: next reconnect attempt
	probing   bool      // a probe for this worker is in flight

	// Reported by the worker's heartbeat payload.
	inflight   int
	queueDepth int
	capacity   int // pool worker count, the basis of the ring weight

	// weight is the quantized ring weight derived from capacity and
	// queue depth; the ring is rebuilt only when it changes.
	weight int

	// dispatches maps scan id → cancel for this worker's in-flight
	// dispatch HTTP calls; severed wholesale when the worker dies.
	dispatches map[string]context.CancelFunc
}

// Fleet is the coordinator-side dispatch + liveness layer.
type Fleet struct {
	cfg    Config
	rec    *obs.Recorder
	log    *slog.Logger
	ring   *Ring
	client *http.Client

	quit chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	workers map[string]*workerHealth
	// lastOwner remembers which worker last ran a scan id, so the next
	// attempt can tell a plain retry (same owner) from a handoff.
	lastOwner map[string]string
	stopped   bool
}

// New builds a fleet over cfg.Workers. Call Start to begin heartbeat
// monitoring and Stop on shutdown.
func New(cfg Config) *Fleet {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 1
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter + 2
	}
	if cfg.ReviveAfter <= 0 {
		cfg.ReviveAfter = 2
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{} // per-call contexts carry the timeouts
	}
	f := &Fleet{
		cfg:       cfg,
		rec:       cfg.Recorder,
		log:       log,
		ring:      NewRing(cfg.Workers, cfg.Replicas),
		client:    client,
		quit:      make(chan struct{}),
		workers:   make(map[string]*workerHealth, len(cfg.Workers)),
		lastOwner: make(map[string]string),
	}
	now := f.rec.Now()
	for _, addr := range f.ring.Members() {
		f.workers[addr] = &workerHealth{
			addr: addr, state: StateAlive, lastBeat: now, weight: MinWeight,
			dispatches: make(map[string]context.CancelFunc),
		}
	}
	f.publishGaugesLocked()
	return f
}

// AddWorker registers a worker announced via the join endpoint: a new
// address enters the ring alive (the next heartbeat sweep demotes it if
// the announcement lied) and is journaled so the membership survives a
// coordinator restart. Re-announcements of a known member are idempotent
// and refresh nothing — liveness stays the heartbeat monitor's job.
// It reports whether the member was new.
func (f *Fleet) AddWorker(addr string) bool {
	if addr == "" {
		return false
	}
	f.mu.Lock()
	if _, ok := f.workers[addr]; ok {
		f.mu.Unlock()
		return false
	}
	f.workers[addr] = &workerHealth{
		addr: addr, state: StateAlive, lastBeat: f.rec.Now(), weight: MinWeight,
		dispatches: make(map[string]context.CancelFunc),
	}
	f.rebuildRingLocked()
	f.publishGaugesLocked()
	f.mu.Unlock()

	f.rec.Counter("fleet_joins_total").Inc()
	f.rec.Events().Append(obs.Event{Type: EvWorkerJoined, Detail: addr})
	f.log.Info("fleet worker joined", "worker", addr)
	if f.cfg.Journal != nil {
		if err := f.cfg.Journal.Append(durable.Record{
			Type: durable.RecFleetMember, Time: f.rec.Now(), Worker: addr,
		}); err != nil {
			f.rec.Counter("journal_append_errors_total").Inc()
		}
	}
	return true
}

// MemberRecords snapshots the membership as journal records, one
// fleet_member per worker. The server's compaction appends them to every
// snapshot (Config.ExtraLiveRecords) so the member set survives WAL
// resets.
func (f *Fleet) MemberRecords() []durable.Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]durable.Record, 0, len(f.workers))
	for _, addr := range f.ring.Members() {
		out = append(out, durable.Record{Type: durable.RecFleetMember, Worker: addr})
	}
	return out
}

// MembersFromRecords extracts the journaled member set from replayed
// records (last-writer set semantics: every fleet_member record adds its
// worker). The coordinator merges it with the configured -fleet-workers
// list at boot.
func MembersFromRecords(records []durable.Record) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range records {
		if r.Type == durable.RecFleetMember && r.Worker != "" && !seen[r.Worker] {
			seen[r.Worker] = true
			out = append(out, r.Worker)
		}
	}
	return out
}

// rebuildRingLocked reconstitutes the ring from the current member set
// and quantized weights; caller holds f.mu.
func (f *Fleet) rebuildRingLocked() {
	members := make([]string, 0, len(f.workers))
	for addr := range f.workers {
		members = append(members, addr)
	}
	f.ring = NewWeightedRing(members, f.cfg.Replicas, func(m string) int {
		if w, ok := f.workers[m]; ok && w.weight > 0 {
			return w.weight
		}
		return MinWeight
	})
}

// Start launches the heartbeat monitor loop.
func (f *Fleet) Start() {
	f.wg.Add(1)
	go f.monitor()
}

// Stop halts monitoring and severs in-flight dispatches.
func (f *Fleet) Stop() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	for _, w := range f.workers {
		for id, cancel := range w.dispatches {
			cancel()
			delete(w.dispatches, id)
		}
	}
	f.mu.Unlock()
	close(f.quit)
	f.wg.Wait()
}

// WorkerStatus is one worker's health as reported by /readyz.
type WorkerStatus struct {
	Addr       string    `json:"addr"`
	State      string    `json:"state"`
	Misses     int       `json:"misses,omitempty"`
	LastBeat   time.Time `json:"last_heartbeat"`
	Inflight   int       `json:"inflight"`
	QueueDepth int       `json:"queue_depth"`
	Weight     int       `json:"weight"`
	Dispatches int       `json:"dispatches_inflight"`
}

// Status reports per-worker health and whether the fleet can accept
// work (at least one worker not dead). It has the server.Config
// FleetStatus shape so /readyz embeds it directly.
func (f *Fleet) Status() (any, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerStatus, 0, len(f.workers))
	ready := false
	for _, addr := range f.ring.Members() {
		w := f.workers[addr]
		if w.state != StateDead {
			ready = true
		}
		out = append(out, WorkerStatus{
			Addr: w.addr, State: w.state, Misses: w.misses,
			LastBeat: w.lastBeat, Inflight: w.inflight,
			QueueDepth: w.queueDepth, Weight: w.weight,
			Dispatches: len(w.dispatches),
		})
	}
	return map[string]any{"workers": out}, ready
}

// publishGaugesLocked refreshes fleet_workers_alive; caller holds f.mu.
func (f *Fleet) publishGaugesLocked() {
	alive := 0
	for _, w := range f.workers {
		if w.state == StateAlive {
			alive++
		}
	}
	f.rec.Gauge("fleet_workers_alive").Set(float64(alive))
}
