package fleet

import (
	"fmt"
	"testing"
)

// ringKeys generates n distinct digest-like keys.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064x", i)
	}
	return keys
}

func ringMembers(n int) []string {
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("http://10.0.0.%d:8477", i+1)
	}
	return members
}

// TestRingUniformDistribution: for every fleet width 2..16, 10k keys
// spread within 2x of fair share on every member (with 128 vnodes the
// observed spread is far tighter; 2x is the correctness floor that
// catches a broken hash or a missing vnode loop).
func TestRingUniformDistribution(t *testing.T) {
	keys := ringKeys(10000)
	for n := 2; n <= 16; n++ {
		r := NewRing(ringMembers(n), 0)
		counts := make(map[string]int, n)
		for _, k := range keys {
			owner, ok := r.Owner(k)
			if !ok {
				t.Fatalf("n=%d: no owner for %s", n, k)
			}
			counts[owner]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		fair := len(keys) / n
		for m, c := range counts {
			if c > 2*fair || c < fair/2 {
				t.Errorf("n=%d: member %s owns %d keys, fair share %d", n, m, c, fair)
			}
		}
	}
}

// TestRingMinimalRemapOnJoin: adding one member to an N-member ring
// moves at most ~1/(N+1) of the keys (slack 1.5x for hash variance);
// every moved key moves TO the new member, never between old members.
func TestRingMinimalRemapOnJoin(t *testing.T) {
	keys := ringKeys(10000)
	for n := 2; n <= 16; n++ {
		before := NewRing(ringMembers(n), 0)
		after := NewRing(ringMembers(n+1), 0)
		joined := ringMembers(n + 1)[n]
		moved := 0
		for _, k := range keys {
			ob, _ := before.Owner(k)
			oa, _ := after.Owner(k)
			if ob == oa {
				continue
			}
			moved++
			if oa != joined {
				t.Fatalf("n=%d: key %s moved %s -> %s, not to the joining member %s", n, k, ob, oa, joined)
			}
		}
		budget := int(float64(len(keys)) / float64(n+1) * 1.5)
		if moved > budget {
			t.Errorf("n=%d: join moved %d keys, budget %d (~1/N)", n, moved, budget)
		}
	}
}

// TestRingMinimalRemapOnLeave: removing one member strands only that
// member's keys; every key owned by a survivor stays put.
func TestRingMinimalRemapOnLeave(t *testing.T) {
	keys := ringKeys(10000)
	for n := 3; n <= 16; n++ {
		members := ringMembers(n)
		before := NewRing(members, 0)
		after := NewRing(members[:n-1], 0)
		left := members[n-1]
		for _, k := range keys {
			ob, _ := before.Owner(k)
			oa, _ := after.Owner(k)
			if ob != left && ob != oa {
				t.Fatalf("n=%d: key %s owned by survivor %s moved to %s on leave of %s", n, k, ob, oa, left)
			}
		}
	}
}

// TestRingDeterministicOwnership: ownership is independent of member
// order and stable across ring rebuilds.
func TestRingDeterministicOwnership(t *testing.T) {
	members := ringMembers(5)
	shuffled := []string{members[3], members[0], members[4], members[2], members[1]}
	a := NewRing(members, 0)
	b := NewRing(shuffled, 0)
	c := NewRing(members, 0)
	for _, k := range ringKeys(1000) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		oc, _ := c.Owner(k)
		if oa != ob || oa != oc {
			t.Fatalf("key %s: owners diverge across identical member sets: %s / %s / %s", k, oa, ob, oc)
		}
	}
}

// TestRingOwnerWhere: a dead owner's keys fall to the next member
// clockwise, deterministically, and return when it revives; with no
// usable member OwnerWhere reports failure.
func TestRingOwnerWhere(t *testing.T) {
	members := ringMembers(4)
	r := NewRing(members, 0)
	for _, k := range ringKeys(500) {
		home, _ := r.Owner(k)
		fallback1, ok := r.OwnerWhere(k, func(m string) bool { return m != home })
		if !ok || fallback1 == home {
			t.Fatalf("key %s: no fallback owner past %s", k, home)
		}
		fallback2, ok := r.OwnerWhere(k, func(m string) bool { return m != home })
		if !ok || fallback2 != fallback1 {
			t.Fatalf("key %s: fallback not deterministic: %s vs %s", k, fallback1, fallback2)
		}
		back, _ := r.OwnerWhere(k, nil)
		if back != home {
			t.Fatalf("key %s: ownership did not return home after revival", k)
		}
	}
	if _, ok := r.OwnerWhere("any", func(string) bool { return false }); ok {
		t.Fatal("OwnerWhere found an owner with every member unusable")
	}
}

// TestRingEmptyAndDuplicates: an empty ring owns nothing; duplicate
// and empty member entries are folded.
func TestRingEmptyAndDuplicates(t *testing.T) {
	if _, ok := NewRing(nil, 0).Owner("k"); ok {
		t.Fatal("empty ring returned an owner")
	}
	r := NewRing([]string{"a", "", "a", "b", "b"}, 16)
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members() = %v, want [a b]", got)
	}
}
