package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"
)

// TestBenchFleetHedging regenerates BENCH_fleet.json: submit-to-settle
// latency percentiles against a fleet where one of two workers is
// deliberately slow, with hedging off vs on. Gated behind
// BENCH_FLEET_OUT so the ordinary test run stays fast:
//
//	BENCH_FLEET_OUT=$PWD/BENCH_fleet.json go test -run TestBenchFleetHedging ./internal/fleet/
//
// The slow worker delays dispatch intake by slowBy; without hedging
// every scan whose digest the ring routes to it eats that delay, so
// the p99 tracks slowBy. With -hedge-delay hedgeAt the coordinator
// duplicates those dispatches to the fast worker after hedgeAt and the
// p99 collapses toward hedgeAt + scan time.
func TestBenchFleetHedging(t *testing.T) {
	out := os.Getenv("BENCH_FLEET_OUT")
	if out == "" {
		t.Skip("set BENCH_FLEET_OUT=/path/to/BENCH_fleet.json to regenerate the hedging benchmark")
	}
	const (
		scans   = 40
		slowBy  = 300 * time.Millisecond
		hedgeAt = 50 * time.Millisecond
	)

	measure := func(hedgeDelay time.Duration) []time.Duration {
		fast, _ := newFullWorker(t, nil)
		slow, _ := newFullWorker(t, slowDispatch(slowBy))
		coord, _ := newHedgeCoordinator(t, []string{fast.URL, slow.URL}, hedgeDelay, 1)
		lat := make([]time.Duration, 0, scans)
		for i := 0; i < scans; i++ {
			php := fmt.Sprintf("%s// bench hedge=%s scan=%d\n", vulnerablePHP, hedgeDelay, i)
			start := time.Now()
			sc := submitScan(t, coord.URL, fmt.Sprintf("bench-%d", i), php)
			got := waitSettled(t, coord.URL, sc.ID)
			if got.Status != "done" {
				t.Fatalf("bench scan %d settled %s (%s), want done", i, got.Status, got.Error)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		return lat
	}
	pct := func(lat []time.Duration, p float64) float64 {
		idx := int(p*float64(len(lat))) - 1
		if idx < 0 {
			idx = 0
		}
		return float64(lat[idx]) / float64(time.Millisecond)
	}

	off := measure(0)
	on := measure(hedgeAt)

	type stats struct {
		P50Ms float64 `json:"p50_ms"`
		P99Ms float64 `json:"p99_ms"`
	}
	doc := struct {
		Scans       int    `json:"scans"`
		SlowWorkers string `json:"slow_worker_delay"`
		HedgeDelay  string `json:"hedge_delay"`
		HedgeOff    stats  `json:"hedge_off"`
		HedgeOn     stats  `json:"hedge_on"`
	}{
		Scans:       scans,
		SlowWorkers: slowBy.String(),
		HedgeDelay:  hedgeAt.String(),
		HedgeOff:    stats{P50Ms: pct(off, 0.50), P99Ms: pct(off, 0.99)},
		HedgeOn:     stats{P50Ms: pct(on, 0.50), P99Ms: pct(on, 0.99)},
	}
	if doc.HedgeOn.P99Ms >= doc.HedgeOff.P99Ms {
		t.Errorf("hedging did not improve p99: off=%.1fms on=%.1fms", doc.HedgeOff.P99Ms, doc.HedgeOn.P99Ms)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: p99 %.1fms -> %.1fms", out, doc.HedgeOff.P99Ms, doc.HedgeOn.P99Ms)
}
