// Dispatch: executing one scan attempt on the worker that owns the
// scan's content digest. Dispatch plugs into server.Config.Dispatch,
// so it runs inside the coordinator's jobs pool with the full retry
// lifecycle around it; its error contract is therefore the jobs
// classification:
//
//	plain error        → retryable; the next attempt re-picks the ring
//	                     owner, which is how handoff happens
//	jobs.Terminal(err) → the worker rejected the submission as
//	                     malformed; retrying cannot help
//	ctx.Err()          → the coordinator cancelled or is shutting
//	                     down; the scan settles cancelled or replays
//	                     as jobs.ErrInterrupted, never terminally
//
// The severed-dispatch case is the subtle one: when the health monitor
// declares a worker dead it cancels that worker's dispatch contexts.
// That cancellation must NOT surface as context.Canceled (jobs would
// classify the scan as cancelled and settle it); Dispatch detects
// "my context died but the scan's didn't" and returns a plain
// retryable error instead, so the attempt budget and the ring decide
// what happens next.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/analyzer"
	"repro/internal/incremental"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
)

// maxTrackedOwners bounds the lastOwner map (scan ids are bounded by
// the server's registry cap, but the fleet should not trust that).
const maxTrackedOwners = 8192

// wireFile carries one source file to a worker. Content is []byte so
// JSON transports it as base64: PHP plugins in the wild contain
// non-UTF-8 bytes that a JSON string round-trip would mangle into
// U+FFFD, breaking byte-identity with a standalone scan.
type wireFile struct {
	Path    string `json:"path"`
	Content []byte `json:"content"`
}

// dispatchWire is the coordinator→worker scan submission.
type dispatchWire struct {
	ScanID  string                `json:"scan_id"`
	Attempt int                   `json:"attempt"`
	Name    string                `json:"name"`
	Tool    string                `json:"tool"`
	Profile string                `json:"profile"`
	Files   []wireFile            `json:"files"`
	Opts    *analyzer.ScanOptions `json:"opts,omitempty"`
}

// workerScanView is the slice of the worker's scan envelope the
// coordinator reads back.
type workerScanView struct {
	ID     string              `json:"id"`
	Status string              `json:"status"`
	Result *analyzer.Result    `json:"result"`
	Inc    *incremental.Report `json:"incremental"`
	Error  string              `json:"error"`
}

// Dispatch executes one scan attempt on the ring owner of req.Key.
// When hedging is configured a second branch races the primary after
// the hedge delay (immediately under DispatchReplicas >= 2); the first
// settled result wins and the loser is cancelled. A replayed scan
// (req.Resubmitted) first reconciles with the workers' in-flight
// tables and adopts a still-running pre-restart dispatch instead of
// starting a duplicate.
func (f *Fleet) Dispatch(ctx context.Context, req *server.DispatchRequest) (*server.DispatchResult, error) {
	if req.Resubmitted {
		if res, err, adopted := f.adopt(ctx, req); adopted {
			return res, err
		}
	}

	hedged := f.cfg.HedgeDelay > 0 || f.cfg.DispatchReplicas >= 2
	want := 1
	if hedged {
		want = 2
	}
	owners, ok := f.pickOwners(req, want)
	if !ok {
		return nil, errors.New("fleet: no workers reachable")
	}
	if len(owners) == 1 {
		res, err := f.dispatchOne(ctx, owners[0], req)
		if err == nil {
			f.forgetOwner(req.ScanID)
		}
		return res, err
	}
	return f.dispatchHedged(ctx, owners, req)
}

// dispatchOne runs one dispatch branch to owner with severing wired in:
// the health monitor declaring owner dead cancels dctx, which this
// function translates into a plain retryable error (never a
// context.Canceled the jobs layer would mistake for a client cancel).
func (f *Fleet) dispatchOne(ctx context.Context, owner string, req *server.DispatchRequest) (*server.DispatchResult, error) {
	dctx, cancel := context.WithCancel(ctx)
	f.register(owner, req.ScanID, cancel)
	defer func() {
		cancel()
		f.unregister(owner, req.ScanID)
	}()

	start := f.rec.Now()
	res, err := f.dispatchTo(dctx, owner, req)
	f.rec.Observe("fleet_dispatch_seconds", f.rec.Now().Sub(start).Seconds())
	if err != nil {
		// Disambiguate whose cancellation aborted the exchange.
		if ctx.Err() != nil {
			// The scan itself was cancelled, the coordinator is draining,
			// or (inside a hedge) the other branch won: propagate so the
			// caller classifies it (the poll loop already forwarded a
			// best-effort cancel to the worker when it had a scan id).
			return nil, ctx.Err()
		}
		if dctx.Err() != nil {
			// Severed by the health monitor: the worker is dead. The
			// per-scan heartbeat_lost event was appended when the
			// monitor cut the cord; return retryable so the next
			// attempt hands the scan to the next ring owner.
			return nil, fmt.Errorf("fleet: dispatch to %s severed: worker declared dead", owner)
		}
		return nil, err
	}
	f.ReportSuccess(owner)
	return res, nil
}

// hedgeOutcome is one branch's answer inside a hedged dispatch.
type hedgeOutcome struct {
	owner string
	res   *server.DispatchResult
	err   error
}

// dispatchHedged races up to two dispatch branches: the primary starts
// immediately, the hedge to the next ring owner after HedgeDelay
// (immediately under replication). The first successful branch wins and
// the other is cancelled; when the primary fails before the hedge timer
// fires, the hedge fires early rather than wasting the budgeted
// attempt. Only when every launched branch has failed does the attempt
// fail.
func (f *Fleet) dispatchHedged(ctx context.Context, owners []string, req *server.DispatchRequest) (*server.DispatchResult, error) {
	branchCtx, cancelBranches := context.WithCancel(ctx)
	defer cancelBranches()

	results := make(chan hedgeOutcome, len(owners))
	launch := func(owner string) {
		go func() {
			res, err := f.dispatchOne(branchCtx, owner, req)
			results <- hedgeOutcome{owner: owner, res: res, err: err}
		}()
	}
	launch(owners[0])
	outstanding := 1
	hedgeLaunched := false

	fireHedge := func(why string) {
		hedgeLaunched = true
		f.rec.Counter("fleet_hedges_total").Inc()
		f.rec.Events().Append(obs.Event{
			Scan: req.ScanID, Type: EvHedgeFired,
			Attempt: req.Attempt, Detail: owners[1] + " (" + why + ")",
		})
		f.rec.Events().Append(obs.Event{
			Scan: req.ScanID, Type: EvDispatched,
			Attempt: req.Attempt, Detail: owners[1],
		})
		f.log.Info("fleet hedge fired",
			"scan_id", req.ScanID, "hedge_worker", owners[1], "reason", why)
		launch(owners[1])
		outstanding++
	}

	delay := f.cfg.HedgeDelay
	if f.cfg.DispatchReplicas >= 2 {
		delay = 0
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C

	var firstErr error
	for outstanding > 0 {
		select {
		case <-timerC:
			timerC = nil
			fireHedge("hedge delay elapsed")
		case out := <-results:
			outstanding--
			if out.err == nil {
				// First settled result wins byte-for-byte; the loser's
				// branch context is cancelled on return. Record the win
				// only when the race was actually on.
				if hedgeLaunched {
					f.rec.Counter("fleet_hedge_wins_total").Inc()
					f.rec.Events().Append(obs.Event{
						Scan: req.ScanID, Type: EvHedgeWon,
						Attempt: req.Attempt, Detail: out.owner,
					})
					loser := owners[0]
					if out.owner == owners[0] {
						loser = owners[1]
					}
					f.rec.Events().Append(obs.Event{
						Scan: req.ScanID, Type: EvHedgeCancelled,
						Attempt: req.Attempt, Detail: loser,
					})
				}
				f.forgetOwner(req.ScanID)
				return out.res, nil
			}
			if ctx.Err() != nil {
				// The scan itself died (client cancel or drain), not a
				// branch: settle it, don't retry it.
				return nil, ctx.Err()
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if !hedgeLaunched && timerC != nil {
				// The primary failed before the hedge timer: spend the
				// hedge now instead of failing an attempt while a live
				// fallback owner is known.
				timerC = nil
				fireHedge("primary failed")
			}
		}
	}
	return nil, firstErr
}

// pickOwners routes req to up to want live ring owners of its content
// digest in clockwise preference order, recording handoff trace events
// when primary ownership moved since the scan's previous attempt.
// Events are appended before the dispatch happens so the timeline reads
// transferred → resubmitted → dispatched → outcome.
func (f *Fleet) pickOwners(req *server.DispatchRequest, want int) ([]string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	owners := f.ring.OwnersWhere(req.Key, want, func(m string) bool {
		return f.workers[m].state != StateDead
	})
	if len(owners) == 0 {
		return nil, false
	}
	owner := owners[0]
	if prev, had := f.lastOwner[req.ScanID]; had && prev != owner {
		f.rec.Counter("fleet_handoffs_total").Inc()
		f.rec.Events().Append(obs.Event{
			Scan: req.ScanID, Type: EvOwnershipTransferred,
			Attempt: req.Attempt, Detail: prev + " -> " + owner,
		})
		f.rec.Events().Append(obs.Event{
			Scan: req.ScanID, Type: EvResubmittedToPeer,
			Attempt: req.Attempt, Detail: owner,
		})
		f.log.Info("fleet scan handoff",
			"scan_id", req.ScanID, "from", prev, "to", owner, "attempt", req.Attempt)
	}
	if len(f.lastOwner) >= maxTrackedOwners {
		// Crude but bounded: ownership memory only matters for scans
		// mid-retry, which is a tiny working set.
		f.lastOwner = make(map[string]string)
	}
	f.lastOwner[req.ScanID] = owner
	f.rec.Events().Append(obs.Event{
		Scan: req.ScanID, Type: EvDispatched,
		Attempt: req.Attempt, Detail: owner,
	})
	return owners, true
}

// inflightEntry is one row of a worker's dispatch table, as served by
// GET /internal/v1/inflight: which coordinator scan maps to which local
// scan, and how far it has gotten.
type inflightEntry struct {
	ScanID       string `json:"scan_id"`
	WorkerScanID string `json:"worker_scan_id"`
	State        string `json:"state"`
}

// adopt reconciles a replayed scan with the workers' in-flight tables:
// if some worker still carries req.ScanID from a dispatch the previous
// coordinator process started, attach to that scan — poll it to
// settlement and take its result — instead of resubmitting the work.
// The third return reports whether an adoption happened; false sends
// the caller down the normal dispatch path.
func (f *Fleet) adopt(ctx context.Context, req *server.DispatchRequest) (*server.DispatchResult, error, bool) {
	f.mu.Lock()
	candidates := make([]string, 0, len(f.workers))
	for _, addr := range f.ring.Members() {
		if w, ok := f.workers[addr]; ok && w.state != StateDead {
			candidates = append(candidates, addr)
		}
	}
	f.mu.Unlock()

	for _, addr := range candidates {
		entry, ok := f.queryInflight(ctx, addr, req.ScanID)
		if !ok {
			continue
		}
		f.rec.Counter("fleet_adoptions_total").Inc()
		f.rec.Events().Append(obs.Event{
			Scan: req.ScanID, Type: EvAdopted, Attempt: req.Attempt,
			Detail: addr + " " + entry.WorkerScanID,
		})
		f.log.Info("fleet scan adopted",
			"scan_id", req.ScanID, "worker", addr,
			"worker_scan_id", entry.WorkerScanID, "state", entry.State)
		f.mu.Lock()
		f.lastOwner[req.ScanID] = addr
		f.mu.Unlock()

		res, err := f.attach(ctx, addr, entry.WorkerScanID)
		if err == nil {
			f.ReportSuccess(addr)
			f.forgetOwner(req.ScanID)
		}
		return res, err, true
	}
	return nil, nil, false
}

// queryInflight asks one worker whether it carries scanID in its
// dispatch table. Errors and 404s both report false: an unreachable
// worker is indistinguishable from one that never saw the scan, and
// the caller's fallback (a fresh dispatch) is safe either way — the
// worker-side content dedup joins a duplicate to the surviving attempt
// if the worker comes back.
func (f *Fleet) queryInflight(ctx context.Context, addr, scanID string) (inflightEntry, bool) {
	qctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(qctx, http.MethodGet,
		addr+"/internal/v1/inflight?scan="+scanID, nil)
	if err != nil {
		return inflightEntry{}, false
	}
	resp, err := f.client.Do(hreq)
	if err != nil {
		return inflightEntry{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return inflightEntry{}, false
	}
	var entry inflightEntry
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil || entry.WorkerScanID == "" {
		return inflightEntry{}, false
	}
	return entry, true
}

// attach follows an adopted worker scan to settlement: fetch its
// current view, poll while it is still queued/running (with severing
// registered, so the worker dying mid-adoption turns into a retryable
// error and a normal handoff), and map the settled state exactly like
// a fresh dispatch.
func (f *Fleet) attach(ctx context.Context, owner, workerScanID string) (*server.DispatchResult, error) {
	dctx, cancel := context.WithCancel(ctx)
	f.register(owner, workerScanID, cancel)
	defer func() {
		cancel()
		f.unregister(owner, workerScanID)
	}()

	hreq, err := http.NewRequestWithContext(dctx, http.MethodGet, owner+"/v1/scans/"+workerScanID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(hreq)
	if err != nil {
		// Disambiguate exactly like dispatchOne: a cancellation must
		// never leak out of the fleet layer unless the scan's own
		// context died, or the jobs lifecycle would misread a severed
		// adoption as a client cancel or a shutdown.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if dctx.Err() != nil {
			return nil, fmt.Errorf("fleet: adoption from %s severed: worker declared dead", owner)
		}
		f.ReportFailure(owner, err)
		return nil, fmt.Errorf("fleet: adopt from %s: %w", owner, err)
	}
	var view workerScanView
	derr := json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: adopt from %s: HTTP %d", owner, resp.StatusCode)
	}
	if derr != nil {
		return nil, fmt.Errorf("fleet: adopt from %s: decode: %w", owner, derr)
	}
	if view.Status == "queued" || view.Status == "running" {
		if err := f.pollUntilSettled(dctx, owner, &view); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if dctx.Err() != nil {
				return nil, fmt.Errorf("fleet: adoption from %s severed: worker declared dead", owner)
			}
			return nil, err
		}
	}
	switch view.Status {
	case "done":
		return &server.DispatchResult{Worker: owner, Result: view.Result, Inc: view.Inc}, nil
	case "failed", "quarantined", "cancelled":
		msg := view.Error
		if msg == "" {
			msg = "scan " + view.Status + " on worker"
		}
		return nil, fmt.Errorf("fleet: adopted scan on %s: %s", owner, msg)
	default:
		return nil, fmt.Errorf("fleet: adopted scan on %s settled in unexpected state %q", owner, view.Status)
	}
}

func (f *Fleet) register(owner, scanID string, cancel context.CancelFunc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.workers[owner]; ok {
		w.dispatches[scanID] = cancel
	}
}

func (f *Fleet) unregister(owner, scanID string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.workers[owner]; ok {
		delete(w.dispatches, scanID)
	}
}

func (f *Fleet) forgetOwner(scanID string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.lastOwner, scanID)
}

// dispatchTo submits req to owner and waits for the worker's scan to
// settle, polling when the worker queued it asynchronously.
func (f *Fleet) dispatchTo(ctx context.Context, owner string, req *server.DispatchRequest) (*server.DispatchResult, error) {
	wire := dispatchWire{
		ScanID: req.ScanID, Attempt: req.Attempt,
		Name: req.Name, Tool: req.Tool, Profile: req.Profile,
		Files: make([]wireFile, 0, len(req.Target.Files)),
		Opts:  req.Opts,
	}
	for _, sf := range req.Target.Files {
		wire.Files = append(wire.Files, wireFile{Path: sf.Path, Content: []byte(sf.Content)})
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, jobs.Terminal(fmt.Errorf("fleet: encode dispatch: %w", err))
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/internal/v1/scan", bytes.NewReader(body))
	if err != nil {
		return nil, jobs.Terminal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(hreq)
	if err != nil {
		// A cancelled dispatch (hedge loser, severed owner, client
		// cancel) says nothing about the worker's health — only count
		// a liveness miss when the transport itself failed.
		if ctx.Err() == nil {
			f.ReportFailure(owner, err)
		}
		return nil, fmt.Errorf("fleet: dispatch to %s: %w", owner, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		// 200: served from the worker's cache shard, result inline.
		// 202: accepted; poll the worker's scan until it settles.
	case http.StatusBadRequest:
		return nil, jobs.Terminal(fmt.Errorf("fleet: worker %s rejected scan: %s", owner, readError(resp.Body)))
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// The worker is alive but saturated or draining; retry
		// without counting a liveness miss.
		return nil, fmt.Errorf("fleet: worker %s busy: HTTP %d", owner, resp.StatusCode)
	default:
		return nil, fmt.Errorf("fleet: worker %s returned HTTP %d: %s", owner, resp.StatusCode, readError(resp.Body))
	}
	var view workerScanView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("fleet: decode worker response: %w", err)
	}
	if resp.StatusCode == http.StatusAccepted {
		if err := f.pollUntilSettled(ctx, owner, &view); err != nil {
			return nil, err
		}
	}
	switch view.Status {
	case "done":
		return &server.DispatchResult{Worker: owner, Result: view.Result, Inc: view.Inc}, nil
	case "failed", "quarantined":
		// The worker runs with a single-attempt budget; the
		// coordinator's own retry lifecycle decides whether this
		// failure retries, hands off, or quarantines.
		msg := view.Error
		if msg == "" {
			msg = "scan " + view.Status + " on worker"
		}
		return nil, fmt.Errorf("fleet: worker %s: %s", owner, msg)
	default:
		return nil, fmt.Errorf("fleet: worker %s settled scan in unexpected state %q", owner, view.Status)
	}
}

// pollUntilSettled polls owner's scan view until it leaves the
// queued/running states, backing off 5ms → 250ms between polls.
func (f *Fleet) pollUntilSettled(ctx context.Context, owner string, view *workerScanView) error {
	delay := 5 * time.Millisecond
	for {
		select {
		case <-ctx.Done():
			f.forwardCancel(owner, view.ID)
			return ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > 250*time.Millisecond {
			delay = 250 * time.Millisecond
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/v1/scans/"+view.ID, nil)
		if err != nil {
			return err
		}
		resp, err := f.client.Do(hreq)
		if err != nil {
			if ctx.Err() == nil {
				f.ReportFailure(owner, err)
			}
			return fmt.Errorf("fleet: poll %s: %w", owner, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("fleet: poll %s: HTTP %d", owner, resp.StatusCode)
		}
		next := workerScanView{}
		err = json.NewDecoder(resp.Body).Decode(&next)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("fleet: decode poll response: %w", err)
		}
		switch next.Status {
		case "queued", "running":
			continue
		}
		*view = next
		return nil
	}
}

// forwardCancel best-effort cancels a worker-side scan after the
// coordinator-side scan was cancelled, so the worker stops burning its
// pool on work nobody wants. Failure is ignored: the worker's own
// budgets bound the orphan. It deliberately uses a fresh context — the
// caller's is the one that just died.
func (f *Fleet) forwardCancel(owner, workerScanID string) {
	if workerScanID == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/scans/"+workerScanID+"/cancel", nil)
	if err != nil {
		return
	}
	if resp, err := f.client.Do(hreq); err == nil {
		resp.Body.Close()
	}
}

// readError extracts the "error" field of an error envelope (or the
// raw body when it is not one).
func readError(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &env) == nil && env.Error != "" {
		return env.Error
	}
	return string(b)
}
