// Dispatch: executing one scan attempt on the worker that owns the
// scan's content digest. Dispatch plugs into server.Config.Dispatch,
// so it runs inside the coordinator's jobs pool with the full retry
// lifecycle around it; its error contract is therefore the jobs
// classification:
//
//	plain error        → retryable; the next attempt re-picks the ring
//	                     owner, which is how handoff happens
//	jobs.Terminal(err) → the worker rejected the submission as
//	                     malformed; retrying cannot help
//	ctx.Err()          → the coordinator cancelled or is shutting
//	                     down; the scan settles cancelled or replays
//	                     as jobs.ErrInterrupted, never terminally
//
// The severed-dispatch case is the subtle one: when the health monitor
// declares a worker dead it cancels that worker's dispatch contexts.
// That cancellation must NOT surface as context.Canceled (jobs would
// classify the scan as cancelled and settle it); Dispatch detects
// "my context died but the scan's didn't" and returns a plain
// retryable error instead, so the attempt budget and the ring decide
// what happens next.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/analyzer"
	"repro/internal/incremental"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
)

// maxTrackedOwners bounds the lastOwner map (scan ids are bounded by
// the server's registry cap, but the fleet should not trust that).
const maxTrackedOwners = 8192

// wireFile carries one source file to a worker. Content is []byte so
// JSON transports it as base64: PHP plugins in the wild contain
// non-UTF-8 bytes that a JSON string round-trip would mangle into
// U+FFFD, breaking byte-identity with a standalone scan.
type wireFile struct {
	Path    string `json:"path"`
	Content []byte `json:"content"`
}

// dispatchWire is the coordinator→worker scan submission.
type dispatchWire struct {
	ScanID  string                `json:"scan_id"`
	Attempt int                   `json:"attempt"`
	Name    string                `json:"name"`
	Tool    string                `json:"tool"`
	Profile string                `json:"profile"`
	Files   []wireFile            `json:"files"`
	Opts    *analyzer.ScanOptions `json:"opts,omitempty"`
}

// workerScanView is the slice of the worker's scan envelope the
// coordinator reads back.
type workerScanView struct {
	ID     string              `json:"id"`
	Status string              `json:"status"`
	Result *analyzer.Result    `json:"result"`
	Inc    *incremental.Report `json:"incremental"`
	Error  string              `json:"error"`
}

// Dispatch executes one scan attempt on the ring owner of req.Key.
func (f *Fleet) Dispatch(ctx context.Context, req *server.DispatchRequest) (*server.DispatchResult, error) {
	owner, ok := f.pickOwner(req)
	if !ok {
		return nil, errors.New("fleet: no workers reachable")
	}

	// Register this dispatch so worker death severs it; the severed
	// context is how a mid-scan kill turns into a retry + handoff.
	dctx, cancel := context.WithCancel(ctx)
	f.register(owner, req.ScanID, cancel)
	defer func() {
		cancel()
		f.unregister(owner, req.ScanID)
	}()

	start := f.rec.Now()
	res, err := f.dispatchTo(dctx, owner, req)
	f.rec.Observe("fleet_dispatch_seconds", f.rec.Now().Sub(start).Seconds())
	if err != nil {
		// Disambiguate whose cancellation aborted the exchange.
		if ctx.Err() != nil {
			// The scan itself was cancelled or the coordinator is
			// draining: propagate so jobs settles it as
			// cancelled/interrupted (the poll loop already forwarded a
			// best-effort cancel to the worker when it had a scan id).
			return nil, ctx.Err()
		}
		if dctx.Err() != nil {
			// Severed by the health monitor: the worker is dead. The
			// per-scan heartbeat_lost event was appended when the
			// monitor cut the cord; return retryable so the next
			// attempt hands the scan to the next ring owner.
			return nil, fmt.Errorf("fleet: dispatch to %s severed: worker declared dead", owner)
		}
		return nil, err
	}
	f.ReportSuccess(owner)
	f.forgetOwner(req.ScanID)
	return res, nil
}

// pickOwner routes req to the live ring owner of its content digest,
// recording handoff trace events when ownership moved since the scan's
// previous attempt. Events are appended before the dispatch happens so
// the timeline reads transferred → resubmitted → dispatched → outcome.
func (f *Fleet) pickOwner(req *server.DispatchRequest) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	owner, ok := f.ring.OwnerWhere(req.Key, func(m string) bool {
		return f.workers[m].state != StateDead
	})
	if !ok {
		return "", false
	}
	if prev, had := f.lastOwner[req.ScanID]; had && prev != owner {
		f.rec.Counter("fleet_handoffs_total").Inc()
		f.rec.Events().Append(obs.Event{
			Scan: req.ScanID, Type: EvOwnershipTransferred,
			Attempt: req.Attempt, Detail: prev + " -> " + owner,
		})
		f.rec.Events().Append(obs.Event{
			Scan: req.ScanID, Type: EvResubmittedToPeer,
			Attempt: req.Attempt, Detail: owner,
		})
		f.log.Info("fleet scan handoff",
			"scan_id", req.ScanID, "from", prev, "to", owner, "attempt", req.Attempt)
	}
	if len(f.lastOwner) >= maxTrackedOwners {
		// Crude but bounded: ownership memory only matters for scans
		// mid-retry, which is a tiny working set.
		f.lastOwner = make(map[string]string)
	}
	f.lastOwner[req.ScanID] = owner
	f.rec.Events().Append(obs.Event{
		Scan: req.ScanID, Type: EvDispatched,
		Attempt: req.Attempt, Detail: owner,
	})
	return owner, true
}

func (f *Fleet) register(owner, scanID string, cancel context.CancelFunc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.workers[owner]; ok {
		w.dispatches[scanID] = cancel
	}
}

func (f *Fleet) unregister(owner, scanID string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.workers[owner]; ok {
		delete(w.dispatches, scanID)
	}
}

func (f *Fleet) forgetOwner(scanID string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.lastOwner, scanID)
}

// dispatchTo submits req to owner and waits for the worker's scan to
// settle, polling when the worker queued it asynchronously.
func (f *Fleet) dispatchTo(ctx context.Context, owner string, req *server.DispatchRequest) (*server.DispatchResult, error) {
	wire := dispatchWire{
		ScanID: req.ScanID, Attempt: req.Attempt,
		Name: req.Name, Tool: req.Tool, Profile: req.Profile,
		Files: make([]wireFile, 0, len(req.Target.Files)),
		Opts:  req.Opts,
	}
	for _, sf := range req.Target.Files {
		wire.Files = append(wire.Files, wireFile{Path: sf.Path, Content: []byte(sf.Content)})
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, jobs.Terminal(fmt.Errorf("fleet: encode dispatch: %w", err))
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/internal/v1/scan", bytes.NewReader(body))
	if err != nil {
		return nil, jobs.Terminal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(hreq)
	if err != nil {
		f.ReportFailure(owner, err)
		return nil, fmt.Errorf("fleet: dispatch to %s: %w", owner, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		// 200: served from the worker's cache shard, result inline.
		// 202: accepted; poll the worker's scan until it settles.
	case http.StatusBadRequest:
		return nil, jobs.Terminal(fmt.Errorf("fleet: worker %s rejected scan: %s", owner, readError(resp.Body)))
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// The worker is alive but saturated or draining; retry
		// without counting a liveness miss.
		return nil, fmt.Errorf("fleet: worker %s busy: HTTP %d", owner, resp.StatusCode)
	default:
		return nil, fmt.Errorf("fleet: worker %s returned HTTP %d: %s", owner, resp.StatusCode, readError(resp.Body))
	}
	var view workerScanView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("fleet: decode worker response: %w", err)
	}
	if resp.StatusCode == http.StatusAccepted {
		if err := f.pollUntilSettled(ctx, owner, &view); err != nil {
			return nil, err
		}
	}
	switch view.Status {
	case "done":
		return &server.DispatchResult{Worker: owner, Result: view.Result, Inc: view.Inc}, nil
	case "failed", "quarantined":
		// The worker runs with a single-attempt budget; the
		// coordinator's own retry lifecycle decides whether this
		// failure retries, hands off, or quarantines.
		msg := view.Error
		if msg == "" {
			msg = "scan " + view.Status + " on worker"
		}
		return nil, fmt.Errorf("fleet: worker %s: %s", owner, msg)
	default:
		return nil, fmt.Errorf("fleet: worker %s settled scan in unexpected state %q", owner, view.Status)
	}
}

// pollUntilSettled polls owner's scan view until it leaves the
// queued/running states, backing off 5ms → 250ms between polls.
func (f *Fleet) pollUntilSettled(ctx context.Context, owner string, view *workerScanView) error {
	delay := 5 * time.Millisecond
	for {
		select {
		case <-ctx.Done():
			f.forwardCancel(owner, view.ID)
			return ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > 250*time.Millisecond {
			delay = 250 * time.Millisecond
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/v1/scans/"+view.ID, nil)
		if err != nil {
			return err
		}
		resp, err := f.client.Do(hreq)
		if err != nil {
			f.ReportFailure(owner, err)
			return fmt.Errorf("fleet: poll %s: %w", owner, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("fleet: poll %s: HTTP %d", owner, resp.StatusCode)
		}
		next := workerScanView{}
		err = json.NewDecoder(resp.Body).Decode(&next)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("fleet: decode poll response: %w", err)
		}
		switch next.Status {
		case "queued", "running":
			continue
		}
		*view = next
		return nil
	}
}

// forwardCancel best-effort cancels a worker-side scan after the
// coordinator-side scan was cancelled, so the worker stops burning its
// pool on work nobody wants. Failure is ignored: the worker's own
// budgets bound the orphan. It deliberately uses a fresh context — the
// caller's is the one that just died.
func (f *Fleet) forwardCancel(owner, workerScanID string) {
	if workerScanID == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/scans/"+workerScanID+"/cancel", nil)
	if err != nil {
		return
	}
	if resp, err := f.client.Do(hreq); err == nil {
		resp.Body.Close()
	}
}

// readError extracts the "error" field of an error envelope (or the
// raw body when it is not one).
func readError(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &env) == nil && env.Error != "" {
		return env.Error
	}
	return string(b)
}
