package fleet

// Robustness-layer unit and integration tests: load-aware ring
// weighting, flap damping, hedged dispatch, coordinator adoption of
// in-flight worker scans, membership churn under load, worker
// auto-registration, and the journaled member set.

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/durable"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/scancache"
	"repro/internal/server"
)

// quietTestLogger discards log output (Announce retries are noisy by
// design).
func quietTestLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// ---------------------------------------------------------------------------
// Weighted ring.

func TestWeightedRingProportionalOwnership(t *testing.T) {
	t.Parallel()
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	weights := map[string]int{"http://a:1": 4}
	r := NewWeightedRing(members, 64, func(m string) int { return weights[m] })

	counts := map[string]int{}
	for i := 0; i < 6000; i++ {
		owner, ok := r.Owner("key-" + string(rune('a'+i%26)) + "-" + time.Duration(i).String())
		if !ok {
			t.Fatal("weighted ring reported empty")
		}
		counts[owner]++
	}
	// a holds weight 4 of a 4+1+1 total: ~2/3 of the key space.
	share := float64(counts["http://a:1"]) / 6000
	if share < 0.5 || share > 0.8 {
		t.Errorf("weight-4 member owns %.2f of keys, want ~0.67 (counts %v)", share, counts)
	}
	for _, m := range members[1:] {
		if counts[m] == 0 {
			t.Errorf("weight-1 member %s owns no keys", m)
		}
	}
}

func TestWeightedRingClampAndMonotonicity(t *testing.T) {
	t.Parallel()
	members := []string{"http://a:1", "http://b:1", "http://c:1"}

	// Clamping: an absurd weight behaves exactly like MaxWeight.
	huge := NewWeightedRing(members, 32, func(m string) int {
		if m == "http://a:1" {
			return 100
		}
		return 1
	})
	capped := NewWeightedRing(members, 32, func(m string) int {
		if m == "http://a:1" {
			return MaxWeight
		}
		return 1
	})
	// Monotonicity: raising one member's weight only pulls keys toward
	// it — no key moves between two unrelated members.
	flat := NewRing(members, 32)
	boosted := NewWeightedRing(members, 32, func(m string) int {
		if m == "http://b:1" {
			return 2
		}
		return 1
	})
	for i := 0; i < 2000; i++ {
		key := "digest-" + time.Duration(i*7).String()
		oh, _ := huge.Owner(key)
		oc, _ := capped.Owner(key)
		if oh != oc {
			t.Fatalf("key %s: weight-100 ring owner %s != weight-%d ring owner %s", key, oh, MaxWeight, oc)
		}
		of, _ := flat.Owner(key)
		ob, _ := boosted.Owner(key)
		if of != ob && ob != "http://b:1" {
			t.Fatalf("key %s moved %s -> %s when only b's weight rose", key, of, ob)
		}
	}
}

func TestQuantizeWeight(t *testing.T) {
	t.Parallel()
	cases := []struct {
		capacity, queueDepth, want int
	}{
		{0, 0, MinWeight},        // unknown capacity floors at MinWeight
		{4, 0, 4},                // idle: weight = pool size
		{16, 0, MaxWeight},       // big pool clamps at MaxWeight
		{4, 8, 4},                // exactly 2x oversubscribed: not yet shedding
		{4, 9, 2},                // >2x oversubscribed: halve
		{1, 5, MinWeight},        // halving never drops below MinWeight
		{20, 50, MaxWeight / 2},  // clamp first, then shed
	}
	for _, c := range cases {
		if got := quantizeWeight(c.capacity, c.queueDepth); got != c.want {
			t.Errorf("quantizeWeight(%d, %d) = %d, want %d", c.capacity, c.queueDepth, got, c.want)
		}
	}
}

// ---------------------------------------------------------------------------
// Flap damping.

// TestFleetFlapDamping: a dead worker must answer ReviveAfter
// consecutive probes before re-entering the ring; a single good packet
// on a flapping link keeps it out and bumps the suppression counter.
func TestFleetFlapDamping(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	addr := "http://flappy:1"
	fl := New(Config{
		Workers: []string{addr}, SuspectAfter: 1, DeadAfter: 3, ReviveAfter: 2,
		Recorder: rec,
	})
	state := func() string {
		fl.mu.Lock()
		defer fl.mu.Unlock()
		return fl.workers[addr].state
	}
	boom := context.DeadlineExceeded

	for i := 0; i < 3; i++ {
		fl.ReportFailure(addr, boom)
	}
	if got := state(); got != StateDead {
		t.Fatalf("after 3 misses state = %s, want dead", got)
	}

	// One good probe: still dead, revival suppressed.
	fl.ReportSuccess(addr)
	if got := state(); got != StateDead {
		t.Fatalf("after 1 success state = %s, want still dead (flap damping)", got)
	}
	if got := rec.Counter("fleet_flaps_suppressed_total").Value(); got != 1 {
		t.Errorf("fleet_flaps_suppressed_total = %d, want 1", got)
	}

	// A miss resets the revival bank: the next lone success is
	// suppressed again.
	fl.ReportFailure(addr, boom)
	fl.ReportSuccess(addr)
	if got := state(); got != StateDead {
		t.Fatalf("flapping link revived on a lone success after a miss")
	}
	if got := rec.Counter("fleet_flaps_suppressed_total").Value(); got != 2 {
		t.Errorf("fleet_flaps_suppressed_total = %d, want 2", got)
	}

	// Two consecutive successes: alive.
	fl.ReportSuccess(addr)
	if got := state(); got != StateAlive {
		t.Fatalf("after 2 consecutive successes state = %s, want alive", got)
	}
	if got := rec.Gauge("fleet_workers_alive").Value(); got != 1 {
		t.Errorf("fleet_workers_alive = %v, want 1", got)
	}
}

// ---------------------------------------------------------------------------
// Hedged dispatch.

// newFullWorker boots a worker through the Worker type (OnSettle wired,
// in-flight table live), optionally behind middleware.
func newFullWorker(t *testing.T, wrap func(http.Handler) http.Handler) (*httptest.Server, *Worker) {
	t.Helper()
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{Workers: 2, QueueSize: 32, Recorder: rec})
	wk := NewWorker(WorkerConfig{Recorder: rec})
	api := server.New(server.Config{
		Pool:     pool,
		Cache:    scancache.New(1<<20, rec),
		Recorder: rec,
		Retry:    jobs.RetryPolicy{MaxAttempts: 1},
		OnSettle: wk.OnSettle,
	})
	wk.Bind(api, pool)
	h := wk.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.Shutdown(ctx)
	})
	return ts, wk
}

// slowDispatch delays POST /internal/v1/scan by d, leaving heartbeats
// and polling untouched — the classic slow worker hedging exists for.
func slowDispatch(d time.Duration) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/internal/v1/scan") {
				select {
				case <-r.Context().Done():
					return
				case <-time.After(d):
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}

// newHedgeCoordinator boots a coordinator with hedging configured.
func newHedgeCoordinator(t *testing.T, workerURLs []string, hedgeDelay time.Duration, replicas int) (*httptest.Server, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{Workers: 4, QueueSize: 32, Recorder: rec})
	fl := New(Config{
		Workers:           workerURLs,
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectAfter:      1,
		DeadAfter:         2,
		HedgeDelay:        hedgeDelay,
		DispatchReplicas:  replicas,
		ReconnectBackoff:  jobs.RetryPolicy{Base: 20 * time.Millisecond, Cap: 100 * time.Millisecond},
		Recorder:          rec,
	})
	api := server.New(server.Config{
		Pool:        pool,
		Cache:       scancache.New(1<<20, rec),
		Recorder:    rec,
		Retry:       jobs.RetryPolicy{MaxAttempts: 6, Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond},
		Dispatch:    fl.Dispatch,
		FleetStatus: fl.Status,
	})
	fl.Start()
	ts := httptest.NewServer(api)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.Shutdown(ctx)
		fl.Stop()
	})
	return ts, rec
}

// TestFleetHedgeReplication: with DispatchReplicas=2 every dispatch
// races both owners immediately; with one worker slowed far past the
// test's patience for a single branch, every scan still settles done
// and every trace records the full hedge lifecycle.
func TestFleetHedgeReplication(t *testing.T) {
	t.Parallel()
	fast, _ := newFullWorker(t, nil)
	slow, _ := newFullWorker(t, slowDispatch(2*time.Second))
	coord, rec := newHedgeCoordinator(t, []string{fast.URL, slow.URL}, 0, 2)

	for _, name := range []string{"rep-a", "rep-b", "rep-c", "rep-d"} {
		sc := submitScan(t, coord.URL, name, vulnerablePHP+"// "+name+"\n")
		start := time.Now()
		got := waitSettled(t, coord.URL, sc.ID)
		if got.Status != "done" {
			t.Fatalf("scan %s = %s (%s), want done", name, got.Status, got.Error)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("scan %s took %s despite replication; the slow branch should never gate settling", name, d)
		}
		var fired, won, cancelled bool
		for _, ev := range scanTrace(t, coord.URL, sc.ID) {
			switch ev.Type {
			case EvHedgeFired:
				fired = true
			case EvHedgeWon:
				won = true
				if ev.Detail != got.Worker {
					t.Errorf("scan %s: hedge_won names %q, scan settled on %q", name, ev.Detail, got.Worker)
				}
			case EvHedgeCancelled:
				cancelled = true
				if ev.Detail == got.Worker {
					t.Errorf("scan %s: hedge_cancelled names the winning worker %q", name, ev.Detail)
				}
			}
		}
		if !fired || !won || !cancelled {
			t.Errorf("scan %s: hedge lifecycle fired=%v won=%v cancelled=%v, want all", name, fired, won, cancelled)
		}
	}
	if got := rec.Counter("fleet_hedges_total").Value(); got < 4 {
		t.Errorf("fleet_hedges_total = %d, want >= 4 (one per replicated dispatch)", got)
	}
	if got := rec.Counter("fleet_hedge_wins_total").Value(); got < 4 {
		t.Errorf("fleet_hedge_wins_total = %d, want >= 4", got)
	}
}

// TestFleetHedgeDelay: with a positive hedge delay, scans owned by the
// slow worker grow a second branch after the delay and settle on the
// fast one long before the slow dispatch would have completed.
func TestFleetHedgeDelay(t *testing.T) {
	t.Parallel()
	const stall = 5 * time.Second
	fast, _ := newFullWorker(t, nil)
	slow, _ := newFullWorker(t, slowDispatch(stall))
	coord, rec := newHedgeCoordinator(t, []string{fast.URL, slow.URL}, 40*time.Millisecond, 0)

	// Enough distinct digests that at least one is owned by the slow
	// worker (12 digests all landing on one of two members is a ~2^-12
	// accident).
	hedged := 0
	for i := 0; i < 12; i++ {
		name := "hd-" + string(rune('a'+i))
		sc := submitScan(t, coord.URL, name, vulnerablePHP+"// "+name+"\n")
		start := time.Now()
		got := waitSettled(t, coord.URL, sc.ID)
		if got.Status != "done" {
			t.Fatalf("scan %s = %s (%s), want done", name, got.Status, got.Error)
		}
		if d := time.Since(start); d > stall {
			t.Errorf("scan %s took %s; hedging should beat the %s stall", name, d, stall)
		}
		for _, ev := range scanTrace(t, coord.URL, sc.ID) {
			if ev.Type == EvHedgeFired {
				hedged++
				if !strings.Contains(ev.Detail, "hedge delay elapsed") {
					t.Errorf("scan %s: hedge_fired detail = %q, want the delay as reason", name, ev.Detail)
				}
				if got.Worker != fast.URL {
					t.Errorf("scan %s hedged but settled on %q, want the fast worker", name, got.Worker)
				}
				break
			}
		}
	}
	if hedged == 0 {
		t.Error("no scan fired a hedge; 12 digests all owned by the fast worker is implausible")
	}
	if got := rec.Counter("fleet_hedges_total").Value(); got < int64(hedged) {
		t.Errorf("fleet_hedges_total = %d, want >= %d", got, hedged)
	}
}

// ---------------------------------------------------------------------------
// Adoption.

// TestFleetAdoptionAttachesToWorkerScan: a resubmitted dispatch whose
// scan id is still in a worker's in-flight table attaches to that scan
// (adopted event, adoption counter) instead of dispatching again; a
// resubmitted scan nobody carries falls through to a fresh dispatch.
func TestFleetAdoptionAttachesToWorkerScan(t *testing.T) {
	t.Parallel()
	ws, _ := newFullWorker(t, nil)

	// Seed the worker's dispatch table directly, as a pre-restart
	// coordinator would have.
	wire := dispatchWire{
		ScanID: "coord-adopt-1", Attempt: 2, Name: "adoptee",
		Files: []wireFile{{Path: "adoptee.php", Content: []byte(vulnerablePHP)}},
	}
	body, _ := json.Marshal(wire)
	resp, err := http.Post(ws.URL+"/internal/v1/scan", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seeding dispatch = HTTP %d", resp.StatusCode)
	}

	rec := obs.NewRecorder()
	fl := New(Config{Workers: []string{ws.URL}, Recorder: rec})
	defer fl.Stop()

	// The replayed attempt: Resubmitted routes through reconciliation.
	res, err := fl.Dispatch(context.Background(), &server.DispatchRequest{
		ScanID: "coord-adopt-1", Key: "adopt-key", Attempt: 3, Resubmitted: true,
		Name: "adoptee",
		Target: &analyzer.Target{Name: "adoptee", Files: []analyzer.SourceFile{
			{Path: "adoptee.php", Content: vulnerablePHP},
		}},
	})
	if err != nil {
		t.Fatalf("adopting dispatch: %v", err)
	}
	if res.Worker != ws.URL || res.Result == nil {
		t.Fatalf("adopted result worker=%q result=%v, want result from %s", res.Worker, res.Result != nil, ws.URL)
	}
	if got := rec.Counter("fleet_adoptions_total").Value(); got != 1 {
		t.Errorf("fleet_adoptions_total = %d, want 1", got)
	}
	var adopted bool
	for _, ev := range rec.Events().ForScan("coord-adopt-1") {
		if ev.Type == EvAdopted {
			adopted = true
			if !strings.Contains(ev.Detail, ws.URL) {
				t.Errorf("adopted detail = %q, want it to name %s", ev.Detail, ws.URL)
			}
		}
	}
	if !adopted {
		t.Error("no adopted event recorded for the reconciled scan")
	}

	// A resubmitted scan the worker never saw: normal dispatch, no
	// second adoption.
	res2, err := fl.Dispatch(context.Background(), &server.DispatchRequest{
		ScanID: "coord-adopt-2", Key: "other-key", Attempt: 1, Resubmitted: true,
		Name: "fresh",
		Target: &analyzer.Target{Name: "fresh", Files: []analyzer.SourceFile{
			{Path: "fresh.php", Content: vulnerablePHP + "// fresh\n"},
		}},
	})
	if err != nil {
		t.Fatalf("fallback dispatch: %v", err)
	}
	if res2.Result == nil {
		t.Fatal("fallback dispatch returned no result")
	}
	if got := rec.Counter("fleet_adoptions_total").Value(); got != 1 {
		t.Errorf("fleet_adoptions_total = %d after uncarried resubmission, want still 1", got)
	}
}

// ---------------------------------------------------------------------------
// Membership churn under load (joins and deaths mid-stream).

// TestFleetMembershipChurnUnderLoad: scans keep settling done while a
// worker joins mid-stream and another dies mid-stream; no accepted
// scan is lost and nothing settles anywhere but a live worker.
func TestFleetMembershipChurnUnderLoad(t *testing.T) {
	t.Parallel()
	w1, _ := newFullWorker(t, nil)
	w2, _ := newFullWorker(t, nil)

	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{Workers: 4, QueueSize: 64, Recorder: rec})
	fl := New(Config{
		Workers:           []string{w1.URL},
		HeartbeatInterval: 40 * time.Millisecond,
		SuspectAfter:      1,
		DeadAfter:         2,
		ReviveAfter:       2,
		ReconnectBackoff:  jobs.RetryPolicy{Base: 20 * time.Millisecond, Cap: 100 * time.Millisecond},
		Recorder:          rec,
	})
	api := server.New(server.Config{
		Pool:        pool,
		Cache:       scancache.New(1<<20, rec),
		Recorder:    rec,
		Retry:       jobs.RetryPolicy{MaxAttempts: 8, Base: 10 * time.Millisecond, Cap: 60 * time.Millisecond},
		Dispatch:    fl.Dispatch,
		FleetStatus: fl.Status,
	})
	fl.Start()
	coord := httptest.NewServer(NewCoordinatorHandler(api, fl))
	t.Cleanup(func() {
		coord.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.Shutdown(ctx)
		fl.Stop()
	})

	var ids []string
	phase := func(prefix string, n int) {
		for i := 0; i < n; i++ {
			name := prefix + string(rune('a'+i))
			ids = append(ids, submitScan(t, coord.URL, name, vulnerablePHP+"// "+name+"\n").ID)
		}
	}

	phase("churn1-", 6)

	// w2 joins mid-stream through the registration endpoint.
	joinBody := `{"advertise":"` + w2.URL + `"}`
	resp, err := http.Post(coord.URL+"/internal/v1/join", "application/json", strings.NewReader(joinBody))
	if err != nil {
		t.Fatal(err)
	}
	var joined struct {
		Joined  bool     `json:"joined"`
		Members []string `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&joined); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !joined.Joined || len(joined.Members) != 2 {
		t.Fatalf("join response = %+v, want joined with 2 members", joined)
	}

	phase("churn2-", 6)

	// w2 dies mid-stream; its keys must hand off to the survivor.
	w2.Close()
	phase("churn3-", 6)

	for _, id := range ids {
		got := waitSettled(t, coord.URL, id)
		if got.Status != "done" {
			t.Fatalf("scan %s = %s (%s) under membership churn, want done", id, got.Status, got.Error)
		}
		if got.Worker != w1.URL && got.Worker != w2.URL {
			t.Errorf("scan %s settled on %q, not a fleet member", id, got.Worker)
		}
	}
	if got := rec.Counter("fleet_joins_total").Value(); got != 1 {
		t.Errorf("fleet_joins_total = %d, want 1", got)
	}
}

// ---------------------------------------------------------------------------
// Worker auto-registration retry.

// TestAnnounceRetriesUntilCoordinatorUp: a worker that boots before its
// coordinator keeps knocking with backoff and registers as soon as the
// join endpoint exists.
func TestAnnounceRetriesUntilCoordinatorUp(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	fl := New(Config{Recorder: rec})
	defer fl.Stop()

	var mu sync.Mutex
	up := false
	join := NewCoordinatorHandler(http.NotFoundHandler(), fl)
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ready := up
		mu.Unlock()
		if !ready {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		join.ServeHTTP(w, r)
	}))
	defer front.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Announce(ctx, nil, front.URL, "http://announced:9999",
			jobs.RetryPolicy{Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond}, quietTestLogger())
	}()

	// Let a few announce attempts fail before the coordinator comes up.
	time.Sleep(60 * time.Millisecond)
	mu.Lock()
	up = true
	mu.Unlock()

	deadline := time.Now().Add(10 * time.Second)
	for {
		fl.mu.Lock()
		_, ok := fl.workers["http://announced:9999"]
		fl.mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("announced worker never joined the fleet")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := rec.Counter("fleet_joins_total").Value(); got != 1 {
		t.Errorf("fleet_joins_total = %d, want 1", got)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Announce did not return after context cancel")
	}
}

// ---------------------------------------------------------------------------
// Journaled membership.

// TestMemberJournalRoundTrip: AddWorker journals the member, and a
// reopened journal's records rebuild the set via MembersFromRecords —
// the path a restarted coordinator takes before any worker
// re-announces.
func TestMemberJournalRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	jrnl, _, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	fl := New(Config{Journal: jrnl, Recorder: rec})
	if !fl.AddWorker("http://joined:1") {
		t.Fatal("AddWorker reported an existing member for a fresh address")
	}
	if fl.AddWorker("http://joined:1") {
		t.Fatal("re-announcement reported as a new member")
	}
	fl.Stop()

	mrs := fl.MemberRecords()
	if len(mrs) != 1 || mrs[0].Worker != "http://joined:1" {
		t.Fatalf("MemberRecords = %+v, want the one joined worker", mrs)
	}
	if err := jrnl.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, records, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	members := MembersFromRecords(records)
	if len(members) != 1 || members[0] != "http://joined:1" {
		t.Fatalf("MembersFromRecords = %v, want [http://joined:1]", members)
	}
}

// TestWorkerJournalReplay: a worker restarted on its own dispatch
// journal resubmits exactly the dispatches whose records were never
// closed, re-owns them under the same coordinator scan id (so a
// reconciling coordinator adopts the replacement), and closes their
// journal records when they settle. Already-settled dispatches are not
// replayed and not resurrected into the in-flight table.
func TestWorkerJournalReplay(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()

	// Write the pre-crash history by hand: two dispatches started, one
	// settled. The crashed worker never closed wjr-open.
	jrnl, _, err := durable.Open(dir, durable.Options{Logger: quietTestLogger()})
	if err != nil {
		t.Fatal(err)
	}
	started := func(scan string) {
		raw, err := json.Marshal(dispatchWire{
			ScanID: scan, Attempt: 1, Name: scan, Tool: "phpsafe",
			Files: []wireFile{{Path: "index.php", Content: []byte(vulnerablePHP + "// " + scan + "\n")}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := jrnl.Append(durable.Record{Type: durable.RecDispatchStarted, ScanID: scan, Attempt: 1, Payload: raw}); err != nil {
			t.Fatal(err)
		}
	}
	started("wjr-open")
	started("wjr-done")
	raw, _ := json.Marshal(settlePayload{State: "done", WorkerScanID: "w-local-1"})
	if err := jrnl.Append(durable.Record{Type: durable.RecDispatchSettled, ScanID: "wjr-done", Payload: raw}); err != nil {
		t.Fatal(err)
	}
	if err := jrnl.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the journal, build the worker stack, replay.
	reopened, records, err := durable.Open(dir, durable.Options{Logger: quietTestLogger()})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{Workers: 2, QueueSize: 32, Recorder: rec})
	wk := NewWorker(WorkerConfig{Journal: reopened, Recorder: rec, Logger: quietTestLogger()})
	api := server.New(server.Config{
		Pool:     pool,
		Cache:    scancache.New(1<<20, rec),
		Recorder: rec,
		Retry:    jobs.RetryPolicy{MaxAttempts: 1},
		OnSettle: wk.OnSettle,
	})
	wk.Bind(api, pool)
	if n := wk.Replay(records); n != 1 {
		t.Fatalf("Replay = %d, want 1 (only the unsettled dispatch)", n)
	}
	if got := rec.Counter("fleet_worker_replayed_total").Value(); got != 1 {
		t.Errorf("fleet_worker_replayed_total = %d, want 1", got)
	}
	ts := httptest.NewServer(wk.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.Shutdown(ctx)
		reopened.Close()
	})

	// The settled dispatch stays settled: not carried for adoption.
	resp, err := http.Get(ts.URL + "/internal/v1/inflight?scan=wjr-done")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("inflight?scan=wjr-done = HTTP %d, want 404 (settled dispatches are not replayed)", resp.StatusCode)
	}

	// The open dispatch was re-accepted under its coordinator id and
	// runs to completion.
	deadline := time.Now().Add(10 * time.Second)
	var entry inflightEntry
	for {
		resp, err := http.Get(ts.URL + "/internal/v1/inflight?scan=wjr-open")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("inflight?scan=wjr-open = HTTP %d, want 200 (replayed dispatch must be carried)", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&entry)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if settledDispatchState(entry.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed dispatch never settled; state=%q", entry.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if entry.State != "done" {
		t.Fatalf("replayed dispatch settled %q, want done", entry.State)
	}
	if entry.WorkerScanID == "" {
		t.Fatal("replayed dispatch has no local scan id")
	}

	// The settle closed the journal record: a second restart replays
	// nothing.
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	third, records2, err := durable.Open(dir, durable.Options{Logger: quietTestLogger()})
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	wk2 := NewWorker(WorkerConfig{Logger: quietTestLogger()})
	wk2.Bind(api, pool)
	if n := wk2.Replay(records2); n != 0 {
		t.Errorf("second Replay = %d, want 0 (all records closed)", n)
	}
}
