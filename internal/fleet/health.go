// Heartbeat monitoring. The coordinator probes every worker's
// /internal/v1/heartbeat on a fixed cadence; consecutive misses walk
// the worker alive → suspect → dead. Dead workers are probed on the
// jobs pool's jittered exponential backoff schedule rather than every
// tick — the fleet's "reconnect loop" is the existing RetryPolicy, not
// a new one — and revive to alive on the first successful probe.
// Dispatch outcomes feed the same accounting: a failed dispatch counts
// as a miss (the fastest death detector is a connection refused), a
// successful one refreshes lastBeat.

package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// heartbeatPayload is what a worker's heartbeat endpoint reports.
type heartbeatPayload struct {
	Advertise  string `json:"advertise,omitempty"`
	Inflight   int    `json:"inflight"`
	QueueDepth int    `json:"queue_depth"`
	Workers    int    `json:"workers"`
}

// monitor is the probe loop: every HeartbeatInterval it probes each
// worker that is due (alive/suspect workers every tick, dead workers
// when their backoff expires), each probe on its own goroutine so one
// hung worker cannot stall detection of the others.
func (f *Fleet) monitor() {
	defer f.wg.Done()
	f.probeDue() // immediate first sweep: catch absent workers fast
	t := time.NewTicker(f.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-f.quit:
			return
		case <-t.C:
			f.probeDue()
		}
	}
}

func (f *Fleet) probeDue() {
	now := f.rec.Now()
	f.mu.Lock()
	var due []string
	for addr, w := range f.workers {
		if w.probing {
			continue
		}
		if w.state == StateDead && now.Before(w.nextProbe) {
			continue
		}
		w.probing = true
		due = append(due, addr)
	}
	f.mu.Unlock()
	for _, addr := range due {
		f.wg.Add(1)
		go func(addr string) {
			defer f.wg.Done()
			f.probe(addr)
		}(addr)
	}
}

// probe performs one heartbeat round-trip and settles the outcome.
func (f *Fleet) probe(addr string) {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.HeartbeatInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/internal/v1/heartbeat", nil)
	if err != nil {
		f.settleProbe(addr, nil, err)
		return
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.settleProbe(addr, nil, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		f.settleProbe(addr, nil, errWorkerStatus(resp.StatusCode))
		return
	}
	var hb heartbeatPayload
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		f.settleProbe(addr, nil, err)
		return
	}
	f.settleProbe(addr, &hb, nil)
}

func (f *Fleet) settleProbe(addr string, hb *heartbeatPayload, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[addr]
	if !ok {
		return
	}
	w.probing = false
	if err != nil {
		f.missLocked(w, err)
		return
	}
	f.reviveLocked(w)
	w.inflight = hb.Inflight
	w.queueDepth = hb.QueueDepth
	w.capacity = hb.Workers
	if next := quantizeWeight(hb.Workers, hb.QueueDepth); next != w.weight {
		// The ring is rebuilt only on a quantized weight change, so
		// ordinary load jitter never moves keys; a genuinely bigger or
		// drowning worker does.
		w.weight = next
		f.rebuildRingLocked()
		f.log.Info("fleet worker weight changed",
			"worker", w.addr, "weight", next, "capacity", hb.Workers,
			"queue_depth", hb.QueueDepth)
	}
}

// quantizeWeight derives a ring weight from a worker's heartbeat: its
// pool size, clamped to [MinWeight, MaxWeight], halved while its queue
// is more than twice oversubscribed so a drowning worker sheds key
// space until it drains.
func quantizeWeight(capacity, queueDepth int) int {
	w := capacity
	if w < MinWeight {
		w = MinWeight
	}
	if w > MaxWeight {
		w = MaxWeight
	}
	if capacity > 0 && queueDepth > 2*capacity {
		if w /= 2; w < MinWeight {
			w = MinWeight
		}
	}
	return w
}

// ReportSuccess records a successful dispatch round-trip to addr: as
// good a liveness signal as a heartbeat.
func (f *Fleet) ReportSuccess(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.workers[addr]; ok {
		f.reviveLocked(w)
	}
}

// ReportFailure records a failed dispatch to addr as a heartbeat miss,
// so a refused connection demotes the worker without waiting for the
// probe loop to notice.
func (f *Fleet) ReportFailure(addr string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.workers[addr]; ok {
		f.missLocked(w, err)
	}
}

// reviveLocked credits w with one success; caller holds f.mu. An alive
// worker just refreshes its beat. A suspect/dead worker must bank
// ReviveAfter consecutive successes before it re-enters the ring —
// flap damping: a link that alternates one good probe with one bad
// never revives, so it cannot thrash ownership back and forth. Each
// suppressed revival is counted; a miss resets the bank.
func (f *Fleet) reviveLocked(w *workerHealth) {
	w.lastBeat = f.rec.Now()
	if w.state == StateAlive {
		w.misses = 0
		w.revives = 0
		return
	}
	w.revives++
	if w.revives < f.cfg.ReviveAfter {
		f.rec.Counter("fleet_flaps_suppressed_total").Inc()
		// Keep probing a dead worker every tick while it is answering:
		// the reconnect backoff is for workers that stay silent.
		w.nextProbe = time.Time{}
		f.log.Debug("fleet worker revival suppressed",
			"worker", w.addr, "state", w.state,
			"consecutive_successes", w.revives, "need", f.cfg.ReviveAfter)
		return
	}
	prev := w.state
	w.state = StateAlive
	w.misses = 0
	w.revives = 0
	f.log.Info("fleet worker recovered", "worker", w.addr, "previous_state", prev)
	f.publishGaugesLocked()
}

// missLocked counts one failure against w and applies the state walk;
// caller holds f.mu.
func (f *Fleet) missLocked(w *workerHealth, err error) {
	w.misses++
	w.revives = 0
	prev := w.state
	switch {
	case w.misses >= f.cfg.DeadAfter:
		w.state = StateDead
	case w.misses >= f.cfg.SuspectAfter:
		if w.state != StateDead {
			w.state = StateSuspect
		}
	}
	if w.state == prev {
		if w.state == StateDead {
			// Still dead: schedule the next reconnect probe along the
			// jittered exponential curve, attempt-indexed by how long
			// it has been dead.
			w.nextProbe = f.rec.Now().Add(f.cfg.ReconnectBackoff.Backoff(w.misses - f.cfg.DeadAfter + 1))
		}
		return
	}
	f.log.Warn("fleet worker state change",
		"worker", w.addr, "state", w.state, "previous_state", prev,
		"misses", w.misses, "error", err.Error())
	if w.state == StateSuspect && prev == StateAlive {
		// Daemon-level event: the loss itself, before any per-scan
		// consequence is recorded.
		f.rec.Events().Append(obs.Event{Type: EvHeartbeatLost, Detail: w.addr, Err: err.Error()})
	}
	if w.state == StateDead {
		w.nextProbe = f.rec.Now().Add(f.cfg.ReconnectBackoff.Backoff(1))
		// Sever the dead worker's in-flight dispatches: each severed
		// dispatch returns a retryable error to the jobs layer, whose
		// retry re-picks the ring owner — the handoff path.
		for id, cancel := range w.dispatches {
			f.rec.Events().Append(obs.Event{Scan: id, Type: EvHeartbeatLost, Detail: w.addr, Err: err.Error()})
			cancel()
			delete(w.dispatches, id)
		}
	}
	f.publishGaugesLocked()
}

type errWorkerStatus int

func (e errWorkerStatus) Error() string {
	return fmt.Sprintf("worker heartbeat returned HTTP %d", int(e))
}
