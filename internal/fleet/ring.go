// Consistent-hash ring: the fleet's routing function. Every worker
// contributes Replicas virtual nodes (points on a 64-bit circle hashed
// from "addr#i"); a scan's content digest is hashed onto the circle
// and owned by the first virtual node clockwise from it. Two
// properties make this the right router for sharded caches:
//
//   - Determinism: ownership is a pure function of the member set and
//     the key, independent of insertion order, so every coordinator
//     (and every restart) routes a digest to the same worker — cache
//     hits for a digest always land on the shard that computed it.
//   - Minimal remap: adding or removing one of N members moves only
//     ~1/N of the key space; every other digest keeps its shard, so a
//     membership change does not flush the fleet's caches.
//
// Liveness is layered on top, not baked in: the ring always contains
// every configured member, and OwnerWhere walks clockwise past members
// the caller reports unusable. A dead worker's keys thus spill to the
// next owner and return home the moment it revives.

package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member (at weight 1)
// when the config leaves it unset: enough points that 10k keys spread
// within a few percent of fair share across 16 workers.
const DefaultReplicas = 128

// Weight bounds for load-aware vnode scaling. A member's vnode count is
// replicas * weight; clamping keeps one beefy worker from absorbing the
// whole key space and keeps every member with at least one vnode.
const (
	MinWeight = 1
	MaxWeight = 8
)

// ringPoint is one virtual node: a position on the hash circle and the
// member it belongs to.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a member set. Build
// with NewRing or NewWeightedRing; all methods are safe for concurrent
// use.
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds a ring over members with replicas virtual nodes each
// (DefaultReplicas when non-positive). Duplicate members are folded;
// member order does not affect ownership.
func NewRing(members []string, replicas int) *Ring {
	return NewWeightedRing(members, replicas, nil)
}

// NewWeightedRing builds a ring where each member contributes
// replicas * weight(member) virtual nodes. Weights are clamped to
// [MinWeight, MaxWeight] (a nil weight function, or one returning <= 0,
// means weight 1), so a worker reporting more capacity owns a
// proportionally larger — but bounded — key-space share. Because a
// member's vnodes at weight w are the prefix of its vnodes at weight
// w+1, raising a weight only pulls keys toward that member and lowering
// it only sheds them: a weight change never shuffles keys between two
// unrelated members.
func NewWeightedRing(members []string, replicas int, weight func(member string) int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		points:  make([]ringPoint, 0, len(uniq)*replicas),
		members: uniq,
	}
	for _, m := range uniq {
		w := MinWeight
		if weight != nil {
			if got := weight(m); got > w {
				w = got
			}
		}
		if w > MaxWeight {
			w = MaxWeight
		}
		for i := 0; i < replicas*w; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between virtual nodes is vanishingly rare;
		// break it by member name so ownership stays deterministic.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Owner returns the member owning key (false only on an empty ring).
func (r *Ring) Owner(key string) (string, bool) {
	return r.OwnerWhere(key, nil)
}

// OwnerWhere returns the first member clockwise from key's position
// that usable reports true for (a nil usable accepts every member).
// It returns false when no member qualifies.
func (r *Ring) OwnerWhere(key string, usable func(member string) bool) (string, bool) {
	owners := r.OwnersWhere(key, 1, usable)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// OwnersWhere returns up to n distinct usable members in clockwise
// preference order from key's position: the first element is the key's
// owner, the second is where the key would land if the owner died — and
// therefore the natural target for a hedged duplicate dispatch, since a
// result computed there warms the shard that would inherit the key.
// A nil usable accepts every member; fewer than n members may qualify.
func (r *Ring) OwnersWhere(key string, n int, usable func(member string) bool) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	tried := make(map[string]bool, len(r.members))
	var owners []string
	for i := 0; i < len(r.points) && len(tried) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.member] {
			continue
		}
		tried[p.member] = true
		if usable == nil || usable(p.member) {
			owners = append(owners, p.member)
			if len(owners) == n {
				break
			}
		}
	}
	return owners
}

// pointHash positions one virtual node: SHA-256 of "member#i"
// truncated to 64 bits. SHA-256 keeps the point set statistically
// uniform even for near-identical member addresses (":8478"/":8479").
func pointHash(member string, i int) uint64 {
	sum := sha256.Sum256([]byte(member + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a routing key. Keys are already hex digests
// (scancache content addresses), but hashing again costs little and
// keeps the ring correct for arbitrary keys.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}
