// Consistent-hash ring: the fleet's routing function. Every worker
// contributes Replicas virtual nodes (points on a 64-bit circle hashed
// from "addr#i"); a scan's content digest is hashed onto the circle
// and owned by the first virtual node clockwise from it. Two
// properties make this the right router for sharded caches:
//
//   - Determinism: ownership is a pure function of the member set and
//     the key, independent of insertion order, so every coordinator
//     (and every restart) routes a digest to the same worker — cache
//     hits for a digest always land on the shard that computed it.
//   - Minimal remap: adding or removing one of N members moves only
//     ~1/N of the key space; every other digest keeps its shard, so a
//     membership change does not flush the fleet's caches.
//
// Liveness is layered on top, not baked in: the ring always contains
// every configured member, and OwnerWhere walks clockwise past members
// the caller reports unusable. A dead worker's keys thus spill to the
// next owner and return home the moment it revives.

package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member when the config
// leaves it unset: enough points that 10k keys spread within a few
// percent of fair share across 16 workers.
const DefaultReplicas = 128

// ringPoint is one virtual node: a position on the hash circle and the
// member it belongs to.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a member set. Build
// with NewRing; all methods are safe for concurrent use.
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds a ring over members with replicas virtual nodes each
// (DefaultReplicas when non-positive). Duplicate members are folded;
// member order does not affect ownership.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		points:  make([]ringPoint, 0, len(uniq)*replicas),
		members: uniq,
	}
	for _, m := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between virtual nodes is vanishingly rare;
		// break it by member name so ownership stays deterministic.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Owner returns the member owning key (false only on an empty ring).
func (r *Ring) Owner(key string) (string, bool) {
	return r.OwnerWhere(key, nil)
}

// OwnerWhere returns the first member clockwise from key's position
// that usable reports true for (a nil usable accepts every member).
// It returns false when no member qualifies.
func (r *Ring) OwnerWhere(key string, usable func(member string) bool) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	tried := make(map[string]bool, len(r.members))
	for i := 0; i < len(r.points) && len(tried) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.member] {
			continue
		}
		tried[p.member] = true
		if usable == nil || usable(p.member) {
			return p.member, true
		}
	}
	return "", false
}

// pointHash positions one virtual node: SHA-256 of "member#i"
// truncated to 64 bits. SHA-256 keeps the point set statistically
// uniform even for near-identical member addresses (":8478"/":8479").
func pointHash(member string, i int) uint64 {
	sum := sha256.Sum256([]byte(member + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a routing key. Keys are already hex digests
// (scancache content addresses), but hashing again costs little and
// keeps the ring correct for arbitrary keys.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}
