// Worker-side surface. A fleet worker is a complete phpsafed server —
// jobs pool, analyzer stack, scancache shard, incremental store,
// flight recorder — minus the durable journal (the coordinator owns
// acceptance durability) and minus retry (MaxAttempts is forced to 1
// by the caller so the coordinator's budget is the only one). This
// handler adds two internal endpoints in front of it:
//
//	POST /internal/v1/scan      accept a dispatched scan (base64 file
//	                            bytes, coordinator scan id for logs)
//	GET  /internal/v1/heartbeat liveness + load for the monitor
//
// Everything else falls through to the standard API, which is what the
// coordinator's poll loop uses (GET /v1/scans/{id}) and what makes a
// worker individually debuggable (trace, metrics, /debug/events).

package fleet

import (
	"encoding/json"
	"net/http"

	"repro/internal/analyzer"
	"repro/internal/jobs"
	"repro/internal/server"
)

// NewWorkerHandler wraps api with the fleet-internal endpoints.
// advertise is the address the worker reports in heartbeats (how the
// coordinator configured it, for cross-checking in logs); pool is the
// worker's jobs pool, read for load reporting.
func NewWorkerHandler(api *server.Server, pool *jobs.Pool, advertise string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/v1/scan", func(w http.ResponseWriter, r *http.Request) {
		var wire dispatchWire
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			http.Error(w, `{"error":"malformed dispatch body"}`, http.StatusBadRequest)
			return
		}
		target := &analyzer.Target{Name: wire.Name, Files: make([]analyzer.SourceFile, 0, len(wire.Files))}
		for _, f := range wire.Files {
			target.Files = append(target.Files, analyzer.SourceFile{Path: f.Path, Content: string(f.Content)})
		}
		// Submit runs the full acceptance path — cache shard fast
		// path, in-flight dedup, budget clamping — and writes the
		// scan envelope (200 cached / 202 queued / 429 full) that the
		// dispatcher understands.
		api.Submit(w, server.SubmitSpec{
			Name: wire.Name, Tool: wire.Tool, Profile: wire.Profile,
			Target: target, Opts: wire.Opts,
		})
	})
	mux.HandleFunc("GET /internal/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(heartbeatPayload{
			Advertise:  advertise,
			Inflight:   pool.InFlight(),
			QueueDepth: pool.QueueDepth(),
			Workers:    pool.Workers(),
		})
	})
	mux.Handle("/", api)
	return mux
}
