// Worker-side surface. A fleet worker is a complete phpsafed server —
// jobs pool, analyzer stack, scancache shard, incremental store,
// flight recorder — minus retry (MaxAttempts is forced to 1 by the
// caller so the coordinator's budget is the only one). The Worker type
// adds the fleet-internal endpoints in front of it:
//
//	POST /internal/v1/scan      accept a dispatched scan (base64 file
//	                            bytes, coordinator scan id for logs)
//	GET  /internal/v1/heartbeat liveness + load for the monitor
//	GET  /internal/v1/inflight  the dispatch table: which coordinator
//	                            scans this worker carries and how far
//	                            they have gotten (?scan=ID for one)
//
// and a worker-local dispatch journal: every accepted dispatch is
// recorded (dispatch_started with the full submission as payload)
// before the local scan is created and closed (dispatch_settled) when
// it settles. The table is what a restarted coordinator reconciles
// against to adopt still-running scans instead of resubmitting them,
// and the journal is what lets a restarted *worker* replay its own
// unfinished attempts — the coordinator's in-flight poll then finds
// the replacement scan under the same coordinator id.
//
// Everything else falls through to the standard API, which is what the
// coordinator's poll loop uses (GET /v1/scans/{id}) and what makes a
// worker individually debuggable (trace, metrics, /debug/events).

package fleet

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/analyzer"
	"repro/internal/durable"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
)

// maxDispatchEntries bounds the worker's dispatch table; when full,
// settled entries are dropped wholesale (unsettled ones — the adoption
// working set — are never dropped).
const maxDispatchEntries = 4096

// dispatchEntry maps one coordinator scan onto this worker.
type dispatchEntry struct {
	WorkerScanID string
	State        string // queued/running until OnSettle reports terminal
}

// settledDispatchState reports whether a dispatch table state needs no
// further execution.
func settledDispatchState(s string) bool {
	switch s {
	case "done", "failed", "cancelled", "quarantined", "rejected":
		return true
	}
	return false
}

// settlePayload is the dispatch_settled record's payload.
type settlePayload struct {
	State        string `json:"state"`
	WorkerScanID string `json:"worker_scan_id,omitempty"`
}

// WorkerConfig shapes a fleet Worker.
type WorkerConfig struct {
	// Advertise is the address this worker reports in heartbeats and
	// announces to the coordinator.
	Advertise string
	// Journal, when set, is the worker-local dispatch journal. It is
	// distinct from a coordinator's scan journal: it records dispatch
	// ownership, not scan lifecycles.
	Journal *durable.Journal
	// Recorder receives the worker's fleet metrics (nil: discarded via
	// the api server's recorder conventions — pass the same recorder as
	// the server for one registry).
	Recorder *obs.Recorder
	// Logger receives dispatch journal logs (nil: slog.Default()).
	Logger *slog.Logger
}

// Worker is the fleet-facing layer of a worker daemon. Create with
// NewWorker, wire OnSettle into the server config, then Bind the built
// server and pool, Replay the dispatch journal, and serve Handler.
type Worker struct {
	cfg WorkerConfig
	log *slog.Logger

	api  *server.Server
	pool *jobs.Pool

	mu      sync.Mutex
	entries map[string]*dispatchEntry // coordinator scan id → entry
	// early catches settles that raced ahead of their entry insert
	// (cache-hit fast paths settle synchronously inside Accept).
	early map[string]string // worker scan id → state
}

// NewWorker builds the fleet layer of a worker daemon.
func NewWorker(cfg WorkerConfig) *Worker {
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	return &Worker{
		cfg:     cfg,
		log:     log.With("component", "fleet_worker"),
		entries: make(map[string]*dispatchEntry),
		early:   make(map[string]string),
	}
}

// Bind attaches the worker's server stack. Call before Handler or
// Replay.
func (wk *Worker) Bind(api *server.Server, pool *jobs.Pool) {
	wk.api = api
	wk.pool = pool
}

// OnSettle is the server.Config.OnSettle hook: it closes the dispatch
// journal record of every table entry the settled local scan backs
// (content dedup can map several coordinator scans onto one local
// scan).
func (wk *Worker) OnSettle(workerScanID, state string) {
	wk.mu.Lock()
	matched := false
	for coordID, e := range wk.entries {
		if e.WorkerScanID != workerScanID || settledDispatchState(e.State) {
			continue
		}
		e.State = state
		matched = true
		wk.journalSettledLocked(coordID, workerScanID, state)
	}
	if !matched {
		if len(wk.early) >= maxDispatchEntries {
			wk.early = make(map[string]string)
		}
		wk.early[workerScanID] = state
	}
	wk.mu.Unlock()
}

// journalSettledLocked appends a dispatch_settled record; caller holds
// wk.mu (journal appends are cheap and internally locked).
func (wk *Worker) journalSettledLocked(coordID, workerScanID, state string) {
	if wk.cfg.Journal == nil {
		return
	}
	raw, _ := json.Marshal(settlePayload{State: state, WorkerScanID: workerScanID})
	if err := wk.cfg.Journal.Append(durable.Record{
		Type: durable.RecDispatchSettled, ScanID: coordID, Payload: raw,
	}); err != nil {
		wk.rec().Counter("journal_append_errors_total").Inc()
	}
}

// rec returns the worker's recorder (nil-safe: obs recorders accept a
// nil receiver for counters).
func (wk *Worker) rec() *obs.Recorder { return wk.cfg.Recorder }

// Handler returns the worker's HTTP surface: the fleet-internal
// endpoints in front of the full standard API.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/v1/scan", wk.handleDispatch)
	mux.HandleFunc("GET /internal/v1/heartbeat", wk.handleHeartbeat)
	mux.HandleFunc("GET /internal/v1/inflight", wk.handleInflight)
	mux.Handle("/", wk.api)
	return mux
}

// handleDispatch accepts one coordinator dispatch: journal first (a
// crash after the record exists replays the attempt; a crash before it
// leaves the coordinator to redispatch, which worker-side content dedup
// makes safe), then the standard acceptance path, then the table
// insert.
func (wk *Worker) handleDispatch(w http.ResponseWriter, r *http.Request) {
	var wire dispatchWire
	if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
		http.Error(w, `{"error":"malformed dispatch body"}`, http.StatusBadRequest)
		return
	}

	// A re-dispatch of a coordinator scan this worker already carries
	// (coordinator retry after a severed exchange, a duplicated hedge)
	// is not a new attempt: skip the journal record, let Accept's
	// content dedup join the existing local scan.
	wk.mu.Lock()
	e, known := wk.entries[wire.ScanID]
	isNew := !known || settledDispatchState(e.State)
	wk.mu.Unlock()
	if isNew && wk.cfg.Journal != nil && wire.ScanID != "" {
		raw, _ := json.Marshal(wire)
		if err := wk.cfg.Journal.Append(durable.Record{
			Type: durable.RecDispatchStarted, ScanID: wire.ScanID,
			Attempt: wire.Attempt, Payload: raw,
		}); err != nil {
			wk.rec().Counter("journal_append_errors_total").Inc()
		}
	}

	id, status, body := wk.api.Accept(specFromWire(&wire))
	wk.note(&wire, id, status, isNew)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// note records the outcome of one dispatch acceptance in the table and
// closes the journal record when acceptance failed outright.
func (wk *Worker) note(wire *dispatchWire, id string, status int, isNew bool) {
	if wire.ScanID == "" {
		return
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if id == "" || status >= http.StatusMultipleChoices {
		// Rejected (bad submission, full queue, draining): the dispatch
		// never became a scan. Close the record so a worker restart does
		// not replay a submission the coordinator already re-routed.
		if isNew {
			wk.journalSettledLocked(wire.ScanID, id, "rejected")
		}
		return
	}
	state := "queued"
	if status == http.StatusOK {
		state = "done"
	}
	if s, ok := wk.early[id]; ok {
		state = s
		delete(wk.early, id)
	}
	if len(wk.entries) >= maxDispatchEntries {
		for cid, e := range wk.entries {
			if settledDispatchState(e.State) {
				delete(wk.entries, cid)
			}
		}
	}
	wk.entries[wire.ScanID] = &dispatchEntry{WorkerScanID: id, State: state}
	if state == "done" && isNew {
		// Settled synchronously (cache shard hit): close the journal
		// record here — OnSettle fired before the entry existed.
		wk.journalSettledLocked(wire.ScanID, id, state)
	}
}

// handleHeartbeat reports liveness and load for the coordinator's
// monitor; Workers (the pool size) is the basis of the ring weight.
func (wk *Worker) handleHeartbeat(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(heartbeatPayload{
		Advertise:  wk.cfg.Advertise,
		Inflight:   wk.pool.InFlight(),
		QueueDepth: wk.pool.QueueDepth(),
		Workers:    wk.pool.Workers(),
	})
}

// handleInflight serves the dispatch table: ?scan=ID answers one entry
// (404 when this worker does not carry the scan), no parameter lists
// everything — the reconciliation surface a restarted coordinator
// adopts from.
func (wk *Worker) handleInflight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	wk.mu.Lock()
	if scanID := r.URL.Query().Get("scan"); scanID != "" {
		e, ok := wk.entries[scanID]
		if !ok {
			wk.mu.Unlock()
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "scan not carried by this worker"})
			return
		}
		out := inflightEntry{ScanID: scanID, WorkerScanID: e.WorkerScanID, State: e.State}
		wk.mu.Unlock()
		json.NewEncoder(w).Encode(out)
		return
	}
	list := make([]inflightEntry, 0, len(wk.entries))
	for coordID, e := range wk.entries {
		list = append(list, inflightEntry{ScanID: coordID, WorkerScanID: e.WorkerScanID, State: e.State})
	}
	wk.mu.Unlock()
	json.NewEncoder(w).Encode(map[string]any{"dispatches": list})
}

// Replay rebuilds the dispatch table from the worker journal and
// resubmits every dispatch whose record was never closed: the crash
// interrupted it, so it is re-accepted locally under the same
// coordinator id. A coordinator that later reconciles (or retries)
// finds the replacement through the table; one that redispatches joins
// it through content dedup. Returns the number of replayed dispatches.
func (wk *Worker) Replay(records []durable.Record) int {
	type dispatchState struct {
		wire    json.RawMessage
		attempt int
		settled bool
	}
	open := make(map[string]*dispatchState)
	var order []string
	for _, r := range records {
		switch r.Type {
		case durable.RecDispatchStarted:
			if _, ok := open[r.ScanID]; !ok {
				order = append(order, r.ScanID)
			}
			open[r.ScanID] = &dispatchState{wire: r.Payload, attempt: r.Attempt}
		case durable.RecDispatchSettled:
			if st, ok := open[r.ScanID]; ok {
				st.settled = true
			}
		}
	}

	replayed := 0
	for _, coordID := range order {
		st := open[coordID]
		if st.settled {
			continue
		}
		var wire dispatchWire
		if err := json.Unmarshal(st.wire, &wire); err != nil {
			wk.rec().Counter("fleet_worker_replay_undecodable_total").Inc()
			wk.log.Error("dispatch journal replay: undecodable record",
				"scan_id", coordID, "error", err.Error())
			continue
		}
		id, status := wk.resubmit(&wire)
		if id == "" {
			wk.log.Error("dispatch journal replay: resubmission rejected",
				"scan_id", coordID, "status", status)
			continue
		}
		wk.note(&wire, id, status, false)
		wk.rec().Counter("fleet_worker_replayed_total").Inc()
		wk.log.Info("dispatch journal replay: attempt resubmitted",
			"scan_id", coordID, "worker_scan_id", id)
		replayed++
	}
	return replayed
}

// resubmit re-accepts one replayed dispatch, waiting out transient
// queue-full rejections (accepted dispatches are never shed).
func (wk *Worker) resubmit(wire *dispatchWire) (string, int) {
	for {
		id, status, _ := wk.api.Accept(specFromWire(wire))
		if status != http.StatusTooManyRequests {
			return id, status
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// specFromWire converts a dispatch submission to the programmatic
// acceptance spec.
func specFromWire(wire *dispatchWire) server.SubmitSpec {
	target := &analyzer.Target{Name: wire.Name, Files: make([]analyzer.SourceFile, 0, len(wire.Files))}
	for _, f := range wire.Files {
		target.Files = append(target.Files, analyzer.SourceFile{Path: f.Path, Content: string(f.Content)})
	}
	return server.SubmitSpec{
		Name: wire.Name, Tool: wire.Tool, Profile: wire.Profile,
		Target: target, Opts: wire.Opts,
	}
}

// NewWorkerHandler wraps api with the fleet-internal endpoints, without
// a dispatch journal or settle tracking.
//
// Deprecated: build a Worker (NewWorker, Bind, Handler) instead; it
// adds the dispatch journal and the in-flight reconciliation table that
// coordinator adoption depends on. This wrapper remains for callers
// that only need dispatch + heartbeat.
func NewWorkerHandler(api *server.Server, pool *jobs.Pool, advertise string) http.Handler {
	wk := NewWorker(WorkerConfig{Advertise: advertise})
	wk.Bind(api, pool)
	return wk.Handler()
}
