package phpast

// Inspect traverses the AST rooted at node in depth-first order, calling f
// for each node. If f returns false for a node, its children are skipped.
// Nil nodes are ignored.
func Inspect(node Node, f func(Node) bool) {
	if node == nil || !f(node) {
		return
	}
	for _, child := range Children(node) {
		Inspect(child, f)
	}
}

// InspectStmts traverses each statement in list with Inspect.
func InspectStmts(list []Stmt, f func(Node) bool) {
	for _, s := range list {
		Inspect(s, f)
	}
}

// CountNodes returns the number of AST nodes in a file, the size figure
// the observability layer reports per parse (parse_ast_nodes_total).
func CountNodes(f *File) int {
	if f == nil {
		return 0
	}
	n := 0
	InspectStmts(f.Stmts, func(Node) bool {
		n++
		return true
	})
	return n
}

// Children returns the direct child nodes of n in source order. It returns
// nil for leaves. The function is exhaustive over the node types defined in
// this package; unknown nodes yield nil.
func Children(n Node) []Node {
	switch x := n.(type) {
	case *VarVar:
		return []Node{x.Expr}
	case *PropertyFetch:
		return nodes(x.Object, x.NameExpr)
	case *IndexFetch:
		return nodes(x.Base, x.Index)
	case *FuncCall:
		return argNodes(x.NameExpr, x.Args)
	case *MethodCall:
		return argNodes(nil, x.Args, x.Object, x.NameExpr)
	case *StaticCall:
		return argNodes(nil, x.Args)
	case *New:
		return argNodes(x.ClassExpr, x.Args)
	case *Assign:
		return nodes(x.LHS, x.RHS)
	case *Binary:
		return nodes(x.L, x.R)
	case *Unary:
		return nodes(x.X)
	case *IncDec:
		return nodes(x.X)
	case *Ternary:
		return nodes(x.Cond, x.Then, x.Else)
	case *Cast:
		return nodes(x.X)
	case *InterpString:
		return exprNodes(x.Parts)
	case *ArrayLit:
		out := make([]Node, 0, 2*len(x.Items))
		for _, it := range x.Items {
			out = appendNode(out, it.Key)
			out = appendNode(out, it.Value)
		}
		return out
	case *ListExpr:
		return exprNodes(x.Targets)
	case *IssetExpr:
		return exprNodes(x.Vars)
	case *EmptyExpr:
		return nodes(x.X)
	case *IncludeExpr:
		return nodes(x.Path)
	case *ExitExpr:
		return nodes(x.X)
	case *PrintExpr:
		return nodes(x.X)
	case *CloneExpr:
		return nodes(x.X)
	case *InstanceOf:
		return nodes(x.X)
	case *Closure:
		out := make([]Node, 0, len(x.Params)+len(x.Body))
		for _, p := range x.Params {
			out = appendNode(out, p.Default)
		}
		return appendStmts(out, x.Body)

	case *ExprStmt:
		return nodes(x.X)
	case *Echo:
		return exprNodes(x.Args)
	case *Block:
		return appendStmts(nil, x.List)
	case *If:
		out := nodes(x.Cond)
		out = appendStmts(out, x.Then)
		for _, ei := range x.Elseifs {
			out = appendNode(out, ei.Cond)
			out = appendStmts(out, ei.Body)
		}
		return appendStmts(out, x.Else)
	case *While:
		return appendStmts(nodes(x.Cond), x.Body)
	case *DoWhile:
		return appendNode(appendStmts(nil, x.Body), x.Cond)
	case *For:
		out := exprNodes(x.Init)
		out = append(out, exprNodes(x.Cond)...)
		out = append(out, exprNodes(x.Post)...)
		return appendStmts(out, x.Body)
	case *Foreach:
		out := nodes(x.Expr, x.Key, x.Value)
		return appendStmts(out, x.Body)
	case *Switch:
		out := nodes(x.Cond)
		for _, c := range x.Cases {
			out = appendNode(out, c.Cond)
			out = appendStmts(out, c.Body)
		}
		return out
	case *Return:
		return nodes(x.X)
	case *StaticVars:
		var out []Node
		for _, v := range x.Vars {
			out = appendNode(out, v.Default)
		}
		return out
	case *Unset:
		return exprNodes(x.Vars)
	case *Throw:
		return nodes(x.X)
	case *Try:
		out := appendStmts(nil, x.Body)
		for _, c := range x.Catches {
			out = appendStmts(out, c.Body)
		}
		return appendStmts(out, x.Finally)
	case *FuncDecl:
		out := make([]Node, 0, len(x.Params)+len(x.Body))
		for _, p := range x.Params {
			out = appendNode(out, p.Default)
		}
		return appendStmts(out, x.Body)
	case *ClassDecl:
		var out []Node
		for _, p := range x.Props {
			out = appendNode(out, p.Default)
		}
		for _, c := range x.Consts {
			out = appendNode(out, c.Value)
		}
		for _, m := range x.Methods {
			for _, p := range m.Params {
				out = appendNode(out, p.Default)
			}
			out = appendStmts(out, m.Body)
		}
		return out
	default:
		return nil
	}
}

// nodes collects the non-nil expressions into a node slice.
func nodes(exprs ...Expr) []Node {
	out := make([]Node, 0, len(exprs))
	for _, e := range exprs {
		out = appendNode(out, e)
	}
	return out
}

// exprNodes converts an expression slice to nodes, skipping nils.
func exprNodes(exprs []Expr) []Node {
	out := make([]Node, 0, len(exprs))
	for _, e := range exprs {
		out = appendNode(out, e)
	}
	return out
}

// argNodes collects pre-expressions, then argument values.
func argNodes(pre Expr, args []Arg, more ...Expr) []Node {
	out := make([]Node, 0, len(args)+len(more)+1)
	for _, e := range more {
		out = appendNode(out, e)
	}
	out = appendNode(out, pre)
	for _, a := range args {
		out = appendNode(out, a.Value)
	}
	return out
}

// appendNode appends e when it is a non-nil node.
func appendNode(out []Node, e Expr) []Node {
	if isNilExpr(e) {
		return out
	}
	return append(out, e)
}

// appendStmts appends all non-nil statements.
func appendStmts(out []Node, list []Stmt) []Node {
	for _, s := range list {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// isNilExpr reports whether e is nil, including a typed nil inside the
// interface.
func isNilExpr(e Expr) bool {
	if e == nil {
		return true
	}
	switch v := e.(type) {
	case *BadExpr:
		return v == nil
	case *Var:
		return v == nil
	default:
		return false
	}
}
