package phpast

import (
	"testing"
)

// lit builds a string literal for test trees.
func lit(s string) *Literal {
	return &Literal{Kind: LitString, Value: s, Position: NewPosition(1)}
}

// v builds a variable node.
func v(name string) *Var { return &Var{Name: name, Position: NewPosition(1)} }

func TestInspectVisitsAllNodes(t *testing.T) {
	t.Parallel()
	// echo "a" . $x; inside if ($c) { ... } else { unset($y); }
	tree := &If{
		Cond: v("c"),
		Then: []Stmt{
			&Echo{Args: []Expr{&Binary{Op: ".", L: lit("a"), R: v("x")}}},
		},
		Else: []Stmt{
			&Unset{Vars: []Expr{v("y")}},
		},
	}
	var vars []string
	Inspect(tree, func(n Node) bool {
		if vv, ok := n.(*Var); ok {
			vars = append(vars, vv.Name)
		}
		return true
	})
	if len(vars) != 3 || vars[0] != "c" || vars[1] != "x" || vars[2] != "y" {
		t.Fatalf("vars = %v, want [c x y] in source order", vars)
	}
}

func TestInspectPrune(t *testing.T) {
	t.Parallel()
	tree := &FuncDecl{
		Name: "f",
		Body: []Stmt{&ExprStmt{X: v("inside")}},
	}
	seen := false
	Inspect(tree, func(n Node) bool {
		if _, ok := n.(*FuncDecl); ok {
			return false // prune
		}
		if vv, ok := n.(*Var); ok && vv.Name == "inside" {
			seen = true
		}
		return true
	})
	if seen {
		t.Fatal("pruned subtree was visited")
	}
}

func TestInspectNilSafe(t *testing.T) {
	t.Parallel()
	Inspect(nil, func(Node) bool { t.Fatal("callback on nil node"); return true })
	// Nodes with nil children must not panic.
	Inspect(&Ternary{Cond: v("c")}, func(Node) bool { return true })
	Inspect(&Return{}, func(Node) bool { return true })
	Inspect(&FuncCall{Name: "f"}, func(Node) bool { return true })
	Inspect(&Foreach{Expr: v("rows"), Value: v("r")}, func(Node) bool { return true })
}

func TestChildrenCoverage(t *testing.T) {
	t.Parallel()
	// Each node type yields its children; spot-check the complex ones.
	mc := &MethodCall{
		Object: v("obj"),
		Name:   "m",
		Args:   []Arg{{Value: lit("a")}, {Value: v("b")}},
	}
	if got := len(Children(mc)); got != 3 {
		t.Errorf("MethodCall children = %d, want 3", got)
	}

	al := &ArrayLit{Items: []ArrayItem{
		{Key: lit("k"), Value: v("a")},
		{Value: v("b")},
	}}
	if got := len(Children(al)); got != 3 {
		t.Errorf("ArrayLit children = %d, want 3", got)
	}

	sw := &Switch{
		Cond: v("mode"),
		Cases: []SwitchCase{
			{Cond: lit("a"), Body: []Stmt{&Break{}}},
			{Body: []Stmt{&Continue{}}},
		},
	}
	if got := len(Children(sw)); got != 4 {
		t.Errorf("Switch children = %d, want 4", got)
	}

	cd := &ClassDecl{
		Name:  "c",
		Props: []PropertyDecl{{Name: "p", Default: lit("x")}},
		Methods: []MethodDecl{{
			Name:   "m",
			Params: []Param{{Name: "a", Default: lit("d")}},
			Body:   []Stmt{&Return{X: v("a")}},
		}},
	}
	if got := len(Children(cd)); got != 3 {
		t.Errorf("ClassDecl children = %d, want 3 (prop default, param default, body stmt)", got)
	}

	try := &Try{
		Body:    []Stmt{&Break{}},
		Catches: []Catch{{Class: "E", Var: "e", Body: []Stmt{&Continue{}}}},
		Finally: []Stmt{&Break{}},
	}
	if got := len(Children(try)); got != 3 {
		t.Errorf("Try children = %d, want 3", got)
	}
}

func TestInspectStmts(t *testing.T) {
	t.Parallel()
	stmts := []Stmt{
		&ExprStmt{X: v("a")},
		&Echo{Args: []Expr{v("b")}},
	}
	count := 0
	InspectStmts(stmts, func(n Node) bool {
		if _, ok := n.(*Var); ok {
			count++
		}
		return true
	})
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestPositions(t *testing.T) {
	t.Parallel()
	n := &Echo{Position: NewPosition(42)}
	if n.Pos() != 42 {
		t.Errorf("Pos() = %d, want 42", n.Pos())
	}
}

func TestChildrenMoreNodeTypes(t *testing.T) {
	t.Parallel()
	cases := []struct {
		node Node
		want int
	}{
		{&While{Cond: v("c"), Body: []Stmt{&Break{}}}, 2},
		{&DoWhile{Body: []Stmt{&Break{}}, Cond: v("c")}, 2},
		{&For{Init: []Expr{v("i")}, Cond: []Expr{v("c")}, Post: []Expr{v("p")},
			Body: []Stmt{&Continue{}}}, 4},
		{&Foreach{Expr: v("rows"), Key: v("k"), Value: v("x"), Body: []Stmt{&Break{}}}, 4},
		{&Ternary{Cond: v("c"), Then: v("t"), Else: v("e")}, 3},
		{&Cast{Type: "int", X: v("x")}, 1},
		{&Unary{Op: "!", X: v("x")}, 1},
		{&IncDec{Op: "++", X: v("x")}, 1},
		{&InterpString{Parts: []Expr{lit("a"), v("x")}}, 2},
		{&ListExpr{Targets: []Expr{v("a"), nil, v("b")}}, 2},
		{&IssetExpr{Vars: []Expr{v("a"), v("b")}}, 2},
		{&EmptyExpr{X: v("x")}, 1},
		{&IncludeExpr{Kind: IncRequire, Path: lit("f.php")}, 1},
		{&ExitExpr{X: v("x")}, 1},
		{&PrintExpr{X: v("x")}, 1},
		{&CloneExpr{X: v("x")}, 1},
		{&InstanceOf{X: v("x"), Class: "C"}, 1},
		{&StaticCall{Class: "C", Name: "m", Args: []Arg{{Value: v("a")}}}, 1},
		{&New{Class: "c", Args: []Arg{{Value: v("a")}, {Value: v("b")}}}, 2},
		{&VarVar{Expr: v("x")}, 1},
		{&PropertyFetch{Object: v("o"), NameExpr: v("n")}, 2},
		{&IndexFetch{Base: v("b"), Index: v("i")}, 2},
		{&Assign{LHS: v("a"), RHS: v("b"), Op: "="}, 2},
		{&Binary{Op: ".", L: v("a"), R: v("b")}, 2},
		{&Closure{Params: []Param{{Name: "p", Default: lit("d")}},
			Body: []Stmt{&Return{X: v("p")}}}, 2},
		{&Throw{X: v("x")}, 1},
		{&Return{X: v("x")}, 1},
		{&Unset{Vars: []Expr{v("a")}}, 1},
		{&Echo{Args: []Expr{v("a"), lit("b")}}, 2},
		{&Block{List: []Stmt{&Break{}, &Continue{}}}, 2},
		{&StaticVars{Vars: []StaticVar{{Name: "s", Default: lit("d")}, {Name: "t"}}}, 1},
		{&FuncCall{Name: "f", Args: []Arg{{Value: v("a")}}}, 1},
		{&MethodCall{Object: v("o"), NameExpr: v("m"), Args: []Arg{{Value: v("a")}}}, 3},
		{&Var{Name: "leaf"}, 0},
		{&Literal{Kind: LitInt, Value: "1"}, 0},
		{&BadExpr{Reason: "x"}, 0},
		{&BadStmt{Reason: "x"}, 0},
		{&InlineHTML{Text: "<p>"}, 0},
	}
	for i, tc := range cases {
		if got := len(Children(tc.node)); got != tc.want {
			t.Errorf("case %d (%T): children = %d, want %d", i, tc.node, got, tc.want)
		}
	}
}
