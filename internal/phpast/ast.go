// Package phpast defines the abstract syntax tree for the PHP 5 subset
// analyzed by this repository's taint analyzers.
//
// phpSAFE (DSN 2015, §III.B) constructs a cleaned token tree per file and
// drives its analysis off it; the baseline tools (RIPS, Pixy) are likewise
// AST-driven. All three analyzers in this repository share these node
// types, produced by package phpparse.
package phpast

// Node is the interface implemented by every AST node.
type Node interface {
	// Pos returns the 1-based source line the node starts on.
	Pos() int
}

// Expr is the interface implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is the interface implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Position is embedded in every node to carry the source line.
type Position struct {
	// Line is the 1-based source line.
	Line int
}

// Pos returns the node's 1-based source line.
func (p Position) Pos() int { return p.Line }

// NewPosition constructs the embedded Position value; it exists for the
// parser package.
func NewPosition(line int) Position { return Position{Line: line} }

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// BadExpr is a placeholder for source text the parser could not interpret.
type BadExpr struct {
	Position
	// Reason describes the parse problem.
	Reason string
}

// Var is a variable use: $name. Name excludes the dollar sign.
type Var struct {
	Position
	Name string
}

// VarVar is a variable variable: $$expr.
type VarVar struct {
	Position
	Expr Expr
}

// PropertyFetch is $obj->name or $obj->$nameExpr.
type PropertyFetch struct {
	Position
	Object Expr
	// Name is the property name when static; empty if NameExpr is set.
	Name string
	// NameExpr is set for dynamic property names ($obj->$p).
	NameExpr Expr
}

// StaticPropertyFetch is ClassName::$name.
type StaticPropertyFetch struct {
	Position
	Class string
	Name  string
}

// ClassConstFetch is ClassName::NAME.
type ClassConstFetch struct {
	Position
	Class string
	Name  string
}

// ConstFetch is a bare constant such as true, null or WP_DEBUG.
type ConstFetch struct {
	Position
	Name string
}

// IndexFetch is base[index]; Index is nil for the append form base[].
type IndexFetch struct {
	Position
	Base  Expr
	Index Expr
}

// FuncCall is name(args) or $fn(args) when NameExpr is set.
type FuncCall struct {
	Position
	// Name is the lower-cased function name for direct calls.
	Name string
	// NameExpr is set for dynamic calls through a variable.
	NameExpr Expr
	Args     []Arg
}

// MethodCall is object->name(args).
type MethodCall struct {
	Position
	Object Expr
	// Name is the method name; empty if NameExpr is set.
	Name     string
	NameExpr Expr
	Args     []Arg
}

// StaticCall is ClassName::name(args).
type StaticCall struct {
	Position
	Class string
	Name  string
	Args  []Arg
}

// New is new ClassName(args).
type New struct {
	Position
	// Class is the class name; empty if ClassExpr is set (new $c).
	Class     string
	ClassExpr Expr
	Args      []Arg
}

// Arg is a call argument.
type Arg struct {
	// Value is the argument expression.
	Value Expr
	// ByRef marks call-time pass-by-reference (&$x).
	ByRef bool
}

// Assign is lhs op rhs where op is one of =, .=, +=, -=, *=, /=, %=, etc.
// ByRef marks reference assignment ($a =& $b).
type Assign struct {
	Position
	LHS   Expr
	RHS   Expr
	Op    string
	ByRef bool
}

// Binary is a binary operation, including "." concatenation and comparison
// and logical operators.
type Binary struct {
	Position
	Op string
	L  Expr
	R  Expr
}

// Unary is a prefix operation: !, -, +, ~, and error suppression @.
type Unary struct {
	Position
	Op string
	X  Expr
}

// IncDec is ++$x, --$x, $x++ or $x--.
type IncDec struct {
	Position
	Op     string // "++" or "--"
	X      Expr
	Prefix bool
}

// Ternary is cond ? then : else; Then is nil for the short form cond ?: else.
type Ternary struct {
	Position
	Cond Expr
	Then Expr
	Else Expr
}

// Cast applies a type cast to X. Type is the canonical lower-case name:
// int, float, string, array, object, bool, unset.
type Cast struct {
	Position
	Type string
	X    Expr
}

// LiteralKind distinguishes literal flavours.
type LiteralKind int

// Literal kinds.
const (
	LitInt LiteralKind = iota + 1
	LitFloat
	LitString
)

// Literal is a scalar literal. For strings, Value holds the decoded
// content without quotes.
type Literal struct {
	Position
	Kind LiteralKind
	// Value is the literal's source value; for LitString the decoded text.
	Value string
}

// InterpString is a double-quoted string, heredoc, or backtick command
// with interpolated parts. Parts alternate Literal fragments and
// expression nodes. IsShell marks backtick command execution.
type InterpString struct {
	Position
	Parts   []Expr
	IsShell bool
}

// ArrayItem is one element of an array literal.
type ArrayItem struct {
	// Key is nil for positional entries.
	Key   Expr
	Value Expr
	ByRef bool
}

// ArrayLit is array(...) or [...].
type ArrayLit struct {
	Position
	Items []ArrayItem
}

// ListExpr is the list($a, $b) = ... destructuring target.
type ListExpr struct {
	Position
	// Targets holds the destinations; nil entries are skipped positions.
	Targets []Expr
}

// IssetExpr is isset($a, $b, ...).
type IssetExpr struct {
	Position
	Vars []Expr
}

// EmptyExpr is empty($x).
type EmptyExpr struct {
	Position
	X Expr
}

// IncludeKind distinguishes the include-family constructs.
type IncludeKind int

// Include kinds.
const (
	IncInclude IncludeKind = iota + 1
	IncIncludeOnce
	IncRequire
	IncRequireOnce
)

// IncludeExpr is include/require (once) of Path.
type IncludeExpr struct {
	Position
	Kind IncludeKind
	Path Expr
}

// ExitExpr is exit(...) or die(...).
type ExitExpr struct {
	Position
	// X is the optional status expression.
	X Expr
}

// PrintExpr is print expr (print is an expression in PHP).
type PrintExpr struct {
	Position
	X Expr
}

// CloneExpr is clone $x.
type CloneExpr struct {
	Position
	X Expr
}

// InstanceOf is $x instanceof ClassName.
type InstanceOf struct {
	Position
	X     Expr
	Class string
}

// Closure is an anonymous function, optionally binding variables with use.
type Closure struct {
	Position
	Params []Param
	// Uses lists variables captured with "use"; ByRef per variable.
	Uses []ClosureUse
	Body []Stmt
}

// ClosureUse is one variable in a closure's use clause.
type ClosureUse struct {
	Name  string
	ByRef bool
}

func (*BadExpr) exprNode()             {}
func (*Var) exprNode()                 {}
func (*VarVar) exprNode()              {}
func (*PropertyFetch) exprNode()       {}
func (*StaticPropertyFetch) exprNode() {}
func (*ClassConstFetch) exprNode()     {}
func (*ConstFetch) exprNode()          {}
func (*IndexFetch) exprNode()          {}
func (*FuncCall) exprNode()            {}
func (*MethodCall) exprNode()          {}
func (*StaticCall) exprNode()          {}
func (*New) exprNode()                 {}
func (*Assign) exprNode()              {}
func (*Binary) exprNode()              {}
func (*Unary) exprNode()               {}
func (*IncDec) exprNode()              {}
func (*Ternary) exprNode()             {}
func (*Cast) exprNode()                {}
func (*Literal) exprNode()             {}
func (*InterpString) exprNode()        {}
func (*ArrayLit) exprNode()            {}
func (*ListExpr) exprNode()            {}
func (*IssetExpr) exprNode()           {}
func (*EmptyExpr) exprNode()           {}
func (*IncludeExpr) exprNode()         {}
func (*ExitExpr) exprNode()            {}
func (*PrintExpr) exprNode()           {}
func (*CloneExpr) exprNode()           {}
func (*InstanceOf) exprNode()          {}
func (*Closure) exprNode()             {}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// BadStmt is a placeholder for a statement the parser could not interpret.
type BadStmt struct {
	Position
	Reason string
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	Position
	X Expr
}

// Echo is echo arg1, arg2, ...; inline HTML and <?= are normalized to Echo.
type Echo struct {
	Position
	Args []Expr
	// FromHTML marks echoes synthesized from inline HTML or <?= tags.
	FromHTML bool
}

// Block is { stmts }.
type Block struct {
	Position
	List []Stmt
}

// If is an if/elseif/else chain. Elseifs and Else may be empty/nil.
type If struct {
	Position
	Cond    Expr
	Then    []Stmt
	Elseifs []ElseIf
	Else    []Stmt
}

// ElseIf is one elseif arm.
type ElseIf struct {
	Line int
	Cond Expr
	Body []Stmt
}

// While is while (cond) body.
type While struct {
	Position
	Cond Expr
	Body []Stmt
}

// DoWhile is do body while (cond).
type DoWhile struct {
	Position
	Body []Stmt
	Cond Expr
}

// For is for (init; cond; post) body.
type For struct {
	Position
	Init []Expr
	Cond []Expr
	Post []Expr
	Body []Stmt
}

// Foreach is foreach (expr as $k => $v) body.
type Foreach struct {
	Position
	Expr Expr
	// Key is nil without the => form.
	Key Expr
	// Value is the per-element target.
	Value Expr
	// ByRef marks foreach (... as &$v).
	ByRef bool
	Body  []Stmt
}

// Switch is switch (cond) { cases }.
type Switch struct {
	Position
	Cond  Expr
	Cases []SwitchCase
}

// SwitchCase is one case or default arm.
type SwitchCase struct {
	Line int
	// Cond is nil for default.
	Cond Expr
	Body []Stmt
}

// Return is return expr;
type Return struct {
	Position
	// X is nil for a bare return.
	X Expr
}

// Break is break [level];
type Break struct {
	Position
}

// Continue is continue [level];
type Continue struct {
	Position
}

// Global is global $a, $b; inside a function.
type Global struct {
	Position
	Names []string
}

// StaticVars is static $a = 1, $b; inside a function.
type StaticVars struct {
	Position
	Vars []StaticVar
}

// StaticVar is one declaration in a static statement.
type StaticVar struct {
	Name    string
	Default Expr
}

// Unset is unset($a, $b);
type Unset struct {
	Position
	Vars []Expr
}

// InlineHTML is a raw HTML segment between PHP regions.
type InlineHTML struct {
	Position
	Text string
}

// Throw is throw expr;
type Throw struct {
	Position
	X Expr
}

// Try is try { } catch (...) { } finally { }.
type Try struct {
	Position
	Body    []Stmt
	Catches []Catch
	Finally []Stmt
}

// Catch is one catch clause.
type Catch struct {
	Line  int
	Class string
	Var   string
	Body  []Stmt
}

// Param is a function or method parameter.
type Param struct {
	// Name excludes the dollar sign.
	Name string
	// ByRef marks &$param.
	ByRef bool
	// Default is the default value expression, or nil.
	Default Expr
	// TypeHint is the optional class/array type hint.
	TypeHint string
}

// FuncDecl is a top-level function declaration.
type FuncDecl struct {
	Position
	// Name is the lower-cased declared name (PHP function names are
	// case-insensitive). OrigName preserves the source spelling.
	Name     string
	OrigName string
	Params   []Param
	Body     []Stmt
	// ByRefReturn marks function &f().
	ByRefReturn bool
}

// Visibility is a member visibility level.
type Visibility int

// Visibility levels.
const (
	Public Visibility = iota + 1
	Protected
	Private
)

// PropertyDecl is one property in a class body.
type PropertyDecl struct {
	Line int
	Name string
	// Default is the initializer, or nil.
	Default    Expr
	Visibility Visibility
	Static     bool
}

// ConstDecl is one class constant.
type ConstDecl struct {
	Line  int
	Name  string
	Value Expr
}

// MethodDecl is one method in a class body.
type MethodDecl struct {
	Line int
	// Name is lower-cased; OrigName preserves spelling.
	Name       string
	OrigName   string
	Params     []Param
	Body       []Stmt
	Visibility Visibility
	Static     bool
	Abstract   bool
	Final      bool
}

// ClassDecl is a class or interface declaration.
type ClassDecl struct {
	Position
	// Name is lower-cased; OrigName preserves spelling.
	Name     string
	OrigName string
	// Extends is the lower-cased parent class name, or empty.
	Extends     string
	Implements  []string
	IsInterface bool
	Abstract    bool
	Props       []PropertyDecl
	Consts      []ConstDecl
	Methods     []MethodDecl
}

func (*BadStmt) stmtNode()    {}
func (*ExprStmt) stmtNode()   {}
func (*Echo) stmtNode()       {}
func (*Block) stmtNode()      {}
func (*If) stmtNode()         {}
func (*While) stmtNode()      {}
func (*DoWhile) stmtNode()    {}
func (*For) stmtNode()        {}
func (*Foreach) stmtNode()    {}
func (*Switch) stmtNode()     {}
func (*Return) stmtNode()     {}
func (*Break) stmtNode()      {}
func (*Continue) stmtNode()   {}
func (*Global) stmtNode()     {}
func (*StaticVars) stmtNode() {}
func (*Unset) stmtNode()      {}
func (*InlineHTML) stmtNode() {}
func (*Throw) stmtNode()      {}
func (*Try) stmtNode()        {}
func (*FuncDecl) stmtNode()   {}
func (*ClassDecl) stmtNode()  {}

// File is a parsed PHP source file.
type File struct {
	// Name is the file's path as given to the parser.
	Name string
	// Stmts is the top-level statement list ("main function" in the
	// paper's terminology, §III.C).
	Stmts []Stmt
	// Lines is the number of physical source lines.
	Lines int
	// Errors lists recoverable parse problems encountered.
	Errors []string
}
