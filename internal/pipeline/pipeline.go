// Package pipeline implements the intra-scan parallel front end shared
// by the analysis engines: the lex → parse stage of every file fans
// across a bounded worker pool (phpSAFE's analysis is embarrassingly
// parallel until model-link time — the paper scans each plugin file
// independently before composing the OOP model, §III.B).
//
// Determinism: a file's AST is a pure function of its content, workers
// write results into a per-index slot, and callers consume the files in
// sorted path order, so output is byte-identical to a sequential run
// regardless of the worker count. Governance holds per worker — each
// worker runs under its own govern.Fork child, so checkpoints, per-file
// time slices and cancellation behave exactly as in a serial scan, and
// the children's accounting is joined back at the barrier.
package pipeline

import (
	"repro/internal/analyzer"
	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/phpast"
	"repro/internal/phplex"
	"repro/internal/phpparse"
)

// ParseFiles parses every source file across a pool of workers and
// returns the ASTs by path. Files present in preparsed (content-
// addressed reuse from incremental scans) are taken as-is and skip the
// pool. Each worker folds identifiers through its own interner shard;
// the shards are merged in worker order at the barrier and the merged
// table is returned so later (serial) stages can keep deduplicating
// against it. workers follows ScanOptions.EffectiveFileWorkers: values
// below one are clamped to a serial run, which executes under gov
// itself with no goroutines — the exact legacy semantics.
func ParseFiles(files []analyzer.SourceFile, preparsed map[string]*phpast.File, rec *obs.Recorder, parent *obs.Span, gov *govern.Governor, workers int) (map[string]*phpast.File, *phplex.Interner) {
	n := len(files)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([]*phplex.Interner, workers)
	for w := range shards {
		shards[w] = phplex.NewInterner()
	}
	out := make([]*phpast.File, n)
	govern.ForkJoin(gov, workers, n, func(child *govern.Governor, worker, idx int) {
		sf := files[idx]
		if f := preparsed[sf.Path]; f != nil {
			out[idx] = f
			return
		}
		// Under a halted governor the governed parser degenerates to an
		// empty (but well-formed) AST, so a cancelled scan drains the
		// front end in O(files).
		out[idx] = phpparse.ParseInterned(sf.Path, sf.Content, rec, parent, child, shards[worker])
	})
	in := shards[0]
	for _, shard := range shards[1:] {
		in.Merge(shard)
	}
	m := make(map[string]*phpast.File, n)
	for i, sf := range files {
		m[sf.Path] = out[i]
	}
	return m, in
}
