package pipeline

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/phpast"
	"repro/internal/phpparse"
)

func sources(n int) []analyzer.SourceFile {
	files := make([]analyzer.SourceFile, n)
	for i := range files {
		files[i] = analyzer.SourceFile{
			Path: fmt.Sprintf("file_%02d.php", i),
			Content: fmt.Sprintf(
				"<?php function Handler%d($x) { $q = $_GET['q%d']; echo $q . $x; }", i, i),
		}
	}
	return files
}

// TestParseFilesMatchesSerial parses the same file set serially and on
// a saturated pool and requires structurally identical ASTs — the
// pipeline's determinism contract at the unit level.
func TestParseFilesMatchesSerial(t *testing.T) {
	files := sources(12)
	serial, _ := ParseFiles(files, nil, nil, nil, nil, 1)
	pooled, _ := ParseFiles(files, nil, nil, nil, nil, 8)
	if len(serial) != len(pooled) {
		t.Fatalf("serial parsed %d files, pooled %d", len(serial), len(pooled))
	}
	for path, want := range serial {
		got := pooled[path]
		if got == nil {
			t.Fatalf("pooled run dropped %s", path)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: pooled AST differs from serial", path)
		}
	}
}

// TestParseFilesReusesPreparsed verifies the incremental fast path: a
// preparsed AST is adopted by pointer identity and never re-parsed.
func TestParseFilesReusesPreparsed(t *testing.T) {
	files := sources(4)
	cached := phpparse.ParseGoverned(files[2].Path, files[2].Content, nil, nil, nil)
	pre := map[string]*phpast.File{files[2].Path: cached}
	got, _ := ParseFiles(files, pre, nil, nil, nil, 8)
	if got[files[2].Path] != cached {
		t.Error("preparsed AST was not adopted by identity")
	}
	for _, sf := range files {
		if got[sf.Path] == nil {
			t.Errorf("%s missing from result", sf.Path)
		}
	}
}

// TestParseFilesMergesInternerShards checks that spellings folded on
// different workers all land in the merged table.
func TestParseFilesMergesInternerShards(t *testing.T) {
	files := sources(16)
	_, in := ParseFiles(files, nil, nil, nil, nil, 8)
	if in == nil {
		t.Fatal("nil interner")
	}
	// Every file contributes its own distinct handler name; all 16 must
	// be present no matter which worker parsed which file.
	if in.Len() < 16 {
		t.Errorf("merged interner holds %d spellings, want at least 16", in.Len())
	}
	for i := 0; i < 16; i++ {
		want := fmt.Sprintf("handler%d", i)
		if got := in.Lower(fmt.Sprintf("Handler%d", i)); got != want {
			t.Errorf("Lower(Handler%d) = %q, want %q", i, got, want)
		}
	}
}

// TestParseFilesEmptyAndClamped covers the degenerate shapes: zero
// files, and worker counts below one clamping to a serial run.
func TestParseFilesEmptyAndClamped(t *testing.T) {
	if m, in := ParseFiles(nil, nil, nil, nil, nil, 8); len(m) != 0 || in == nil {
		t.Errorf("empty input: got %d files, interner %v", len(m), in)
	}
	files := sources(3)
	m, _ := ParseFiles(files, nil, nil, nil, nil, -1)
	if len(m) != 3 {
		t.Errorf("clamped run parsed %d files, want 3", len(m))
	}
}
