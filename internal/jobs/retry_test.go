package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// jobEvents collects a job's lifecycle callbacks for assertions.
type jobEvents struct {
	mu          sync.Mutex
	starts      []int
	startTimes  []time.Time
	retries     []time.Duration
	quarantined int
	quarErr     error
	completed   int
	done        chan struct{}
}

func newJobEvents() *jobEvents { return &jobEvents{done: make(chan struct{})} }

func (e *jobEvents) bind(j *Job) *Job {
	j.OnStart = func(attempt int) {
		e.mu.Lock()
		e.starts = append(e.starts, attempt)
		e.startTimes = append(e.startTimes, time.Now())
		e.mu.Unlock()
	}
	j.OnRetry = func(attempt int, err error, backoff time.Duration) {
		e.mu.Lock()
		e.retries = append(e.retries, backoff)
		e.mu.Unlock()
	}
	j.OnQuarantine = func(attempts int, err error) {
		e.mu.Lock()
		e.quarantined = attempts
		e.quarErr = err
		e.mu.Unlock()
		close(e.done)
	}
	j.OnComplete = func(attempts int) {
		e.mu.Lock()
		e.completed = attempts
		e.mu.Unlock()
		close(e.done)
	}
	return j
}

func (e *jobEvents) wait(t *testing.T) {
	t.Helper()
	select {
	case <-e.done:
	case <-time.After(10 * time.Second):
		t.Fatal("job never settled")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	p := New(Config{Workers: 2, QueueSize: 8, Recorder: rec})
	defer p.Shutdown(context.Background())

	var attempts int
	ev := newJobEvents()
	j := ev.bind(&Job{
		ID: "flaky",
		Run: func(context.Context) error {
			attempts++
			if attempts < 3 {
				return errors.New("transient I/O fault")
			}
			return nil
		},
		Retry: RetryPolicy{MaxAttempts: 5, Base: time.Millisecond, Cap: 4 * time.Millisecond},
	})
	if err := p.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	ev.wait(t)
	if ev.completed != 3 {
		t.Fatalf("completed on attempt %d, want 3", ev.completed)
	}
	if len(ev.starts) != 3 || ev.starts[0] != 1 || ev.starts[2] != 3 {
		t.Fatalf("starts = %v", ev.starts)
	}
	snap := rec.Snapshot()
	if got := snap.Counters["jobs_completed_total"]; got != 1 {
		t.Errorf("jobs_completed_total = %d, want 1", got)
	}
	if got := snap.Counters["jobs_failed_total"]; got != 2 {
		t.Errorf("jobs_failed_total = %d, want 2", got)
	}
	if got := snap.Counters["jobs_retries_total"]; got != 2 {
		t.Errorf("jobs_retries_total = %d, want 2", got)
	}
	if got := snap.Counters["jobs_quarantined_total"]; got != 0 {
		t.Errorf("jobs_quarantined_total = %d, want 0", got)
	}
}

func TestPoisonJobQuarantinesAfterExactlyMaxAttempts(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	p := New(Config{Workers: 1, QueueSize: 8, Recorder: rec})
	defer p.Shutdown(context.Background())

	const maxAttempts = 3
	base := 30 * time.Millisecond
	var runs int
	ev := newJobEvents()
	j := ev.bind(&Job{
		ID: "poison",
		Run: func(context.Context) error {
			runs++
			panic("poisoned plugin")
		},
		Retry: RetryPolicy{MaxAttempts: maxAttempts, Base: base, Cap: base * 8},
	})
	if err := p.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	ev.wait(t)

	if runs != maxAttempts {
		t.Fatalf("job ran %d times, want exactly %d", runs, maxAttempts)
	}
	if ev.quarantined != maxAttempts {
		t.Fatalf("quarantined after %d attempts, want %d", ev.quarantined, maxAttempts)
	}
	var pe *PanicError
	if !errors.As(ev.quarErr, &pe) {
		t.Fatalf("quarantine error = %v, want *PanicError", ev.quarErr)
	}

	// Backoff must actually have been observed between attempts: equal
	// jitter draws from [d/2, d), so attempt gaps are at least half the
	// nominal delay.
	if len(ev.startTimes) != maxAttempts {
		t.Fatalf("start times = %d, want %d", len(ev.startTimes), maxAttempts)
	}
	for i := 1; i < maxAttempts; i++ {
		gap := ev.startTimes[i].Sub(ev.startTimes[i-1])
		nominal := base << (i - 1)
		if gap < nominal/2 {
			t.Errorf("gap before attempt %d = %v, want >= %v (backoff not observed)",
				i+1, gap, nominal/2)
		}
	}

	snap := rec.Snapshot()
	if got := snap.Counters["jobs_quarantined_total"]; got != 1 {
		t.Errorf("jobs_quarantined_total = %d, want 1", got)
	}
	if got := snap.Counters["jobs_failed_total"]; got != int64(maxAttempts) {
		t.Errorf("jobs_failed_total = %d, want %d", got, maxAttempts)
	}
	if got := snap.Counters["jobs_panics_total"]; got != int64(maxAttempts) {
		t.Errorf("jobs_panics_total = %d, want %d", got, maxAttempts)
	}
	if got := snap.Counters["jobs_completed_total"]; got != 0 {
		t.Errorf("jobs_completed_total = %d, want 0", got)
	}
}

func TestTerminalErrorSkipsRetry(t *testing.T) {
	t.Parallel()
	p := New(Config{Workers: 1, QueueSize: 4})
	defer p.Shutdown(context.Background())

	var runs int
	ev := newJobEvents()
	j := ev.bind(&Job{
		ID: "hopeless",
		Run: func(context.Context) error {
			runs++
			return Terminal(errors.New("malformed beyond retry"))
		},
		Retry: RetryPolicy{MaxAttempts: 5, Base: time.Millisecond},
	})
	if err := p.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	ev.wait(t)
	if runs != 1 {
		t.Fatalf("terminal job ran %d times, want 1", runs)
	}
	if ev.quarantined != 1 {
		t.Fatalf("quarantined after %d attempts, want 1", ev.quarantined)
	}
}

func TestCancellationIsTerminal(t *testing.T) {
	t.Parallel()
	p := New(Config{Workers: 1, QueueSize: 4})
	defer p.Shutdown(context.Background())

	var runs int
	ev := newJobEvents()
	j := ev.bind(&Job{
		ID: "cancelled",
		Run: func(context.Context) error {
			runs++
			return context.Canceled
		},
		Retry: RetryPolicy{MaxAttempts: 5, Base: time.Millisecond},
	})
	if err := p.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	ev.wait(t)
	if runs != 1 || ev.quarantined != 1 {
		t.Fatalf("cancelled job: runs=%d quarantined-after=%d, want 1/1", runs, ev.quarantined)
	}
}

func TestInterruptedAttemptSettlesNothing(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	p := New(Config{Workers: 1, QueueSize: 4, Recorder: rec})
	defer p.Shutdown(context.Background())

	// A shutdown-interrupted attempt must neither complete nor
	// quarantine: the job stays unsettled for journal replay.
	ran := make(chan struct{})
	ev := newJobEvents()
	j := ev.bind(&Job{
		ID: "interrupted",
		Run: func(context.Context) error {
			close(ran)
			return fmt.Errorf("drain deadline: %w", ErrInterrupted)
		},
		Retry: RetryPolicy{MaxAttempts: 3, Base: time.Millisecond},
	})
	if err := p.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	<-ran
	time.Sleep(50 * time.Millisecond)
	select {
	case <-ev.done:
		t.Fatalf("interrupted job settled: completed=%d quarantined=%d", ev.completed, ev.quarantined)
	default:
	}
	snap := rec.Snapshot()
	if got := snap.Counters["jobs_interrupted_total"]; got != 1 {
		t.Errorf("jobs_interrupted_total = %d, want 1", got)
	}
	for _, c := range []string{"jobs_completed_total", "jobs_failed_total", "jobs_quarantined_total", "jobs_retries_total"} {
		if got := snap.Counters[c]; got != 0 {
			t.Errorf("%s = %d, want 0", c, got)
		}
	}
}

func TestPriorAttemptsResumeBudget(t *testing.T) {
	t.Parallel()
	p := New(Config{Workers: 1, QueueSize: 4})
	defer p.Shutdown(context.Background())

	// 2 of 3 attempts already burned before the (simulated) restart:
	// exactly one more run is allowed.
	var runs int
	ev := newJobEvents()
	j := ev.bind(&Job{
		ID: "resumed",
		Run: func(context.Context) error {
			runs++
			return errors.New("still failing")
		},
		Retry:         RetryPolicy{MaxAttempts: 3, Base: time.Millisecond},
		PriorAttempts: 2,
	})
	if err := p.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	ev.wait(t)
	if runs != 1 {
		t.Fatalf("resumed job ran %d times, want 1", runs)
	}
	if ev.quarantined != 3 {
		t.Fatalf("quarantined after %d total attempts, want 3", ev.quarantined)
	}
}

func TestRetrySurvivesFullQueue(t *testing.T) {
	t.Parallel()
	p := New(Config{Workers: 1, QueueSize: 1})
	defer p.Shutdown(context.Background())

	// A retrying job whose backoff expires while the worker is busy
	// and the queue is full must wait for a slot, not be shed.
	block := make(chan struct{})
	var unblock sync.Once
	defer unblock.Do(func() { close(block) })

	var runs int
	retried := make(chan struct{})
	ev := newJobEvents()
	j := ev.bind(&Job{
		ID: "squeezed",
		Run: func(context.Context) error {
			runs++
			if runs == 1 {
				return errors.New("transient")
			}
			return nil
		},
		Retry: RetryPolicy{MaxAttempts: 3, Base: 40 * time.Millisecond, Cap: 40 * time.Millisecond},
	})
	onRetry := j.OnRetry
	j.OnRetry = func(attempt int, err error, backoff time.Duration) {
		onRetry(attempt, err, backoff)
		close(retried)
	}
	if err := p.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	// After the first attempt fails, saturate the pool: the worker
	// parks on the blocker and a filler occupies the only queue slot,
	// so the job's requeue finds the queue full when its backoff ends.
	select {
	case <-retried:
	case <-time.After(5 * time.Second):
		t.Fatal("first attempt never failed")
	}
	started := make(chan struct{})
	if err := p.Submit(func(context.Context) { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := p.Submit(func(context.Context) {}); err != nil {
		t.Fatal(err)
	}
	// Give the backoff time to expire against the saturated queue,
	// then free the worker and let everything drain.
	time.Sleep(100 * time.Millisecond)
	unblock.Do(func() { close(block) })
	ev.wait(t)
	if ev.completed != 2 {
		t.Fatalf("completed on attempt %d, want 2", ev.completed)
	}
	if runs != 2 {
		t.Fatalf("job ran %d times, want 2", runs)
	}
}

func TestShutdownDropsParkedRetries(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	p := New(Config{Workers: 1, QueueSize: 4, Recorder: rec})

	settled := make(chan struct{})
	j := &Job{
		ID:  "parked",
		Run: func(context.Context) error { return errors.New("always failing") },
		// A long backoff guarantees the job is parked when Shutdown runs.
		Retry:        RetryPolicy{MaxAttempts: 3, Base: time.Hour, Cap: time.Hour},
		OnRetry:      func(int, error, time.Duration) { close(settled) },
		OnQuarantine: func(int, error) { t.Error("parked job must not quarantine at shutdown") },
	}
	if err := p.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	select {
	case <-settled:
	case <-time.After(5 * time.Second):
		t.Fatal("first attempt never failed")
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := rec.Snapshot().Counters["jobs_retries_dropped_total"]; got != 1 {
		t.Errorf("jobs_retries_dropped_total = %d, want 1", got)
	}
}

func TestBackoffSchedule(t *testing.T) {
	t.Parallel()
	pol := RetryPolicy{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: func() float64 { return 0 }}
	want := []time.Duration{50, 100, 200, 400, 500, 500} // ms; jitter 0 → d/2
	for i, w := range want {
		if got := pol.Backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Max jitter stays under the nominal delay.
	pol.Jitter = func() float64 { return 0.999999 }
	if got := pol.Backoff(1); got < 50*time.Millisecond || got >= 100*time.Millisecond {
		t.Errorf("jittered Backoff(1) = %v, want in [50ms, 100ms)", got)
	}
}

func TestClassification(t *testing.T) {
	t.Parallel()
	cases := []struct {
		err  error
		want bool
	}{
		{context.DeadlineExceeded, true},
		{&PanicError{Value: "boom"}, true},
		{errors.New("disk I/O error"), true},
		{context.Canceled, false},
		{Terminal(errors.New("bad input")), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if Terminal(nil) != nil {
		t.Error("Terminal(nil) != nil")
	}
}
