// Package jobs provides the bounded FIFO job queue and worker pool
// behind the scan daemon. The design goals, in order:
//
//   - Backpressure over buffering: Submit fails fast with ErrQueueFull
//     when the queue is at capacity, so the HTTP layer can answer 429
//     instead of accumulating unbounded work.
//   - Graceful drain: Shutdown stops intake, lets workers finish every
//     job already accepted, and only cancels running jobs when the
//     caller's deadline expires. An accepted job is never dropped.
//   - Bounded per-job lifetime: each job runs under a context that is
//     cancelled after the configured timeout, so one pathological scan
//     cannot pin a worker forever (jobs must observe the context).
package jobs

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrQueueFull is returned by Submit when the queue is at capacity;
// the caller should shed load (HTTP 429).
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Shutdown has begun; the caller
// should refuse new work (HTTP 503).
var ErrClosed = errors.New("jobs: pool closed")

// Config sizes a pool.
type Config struct {
	// Workers is the number of concurrent workers (default NumCPU).
	Workers int
	// QueueSize bounds the number of accepted-but-not-started jobs
	// (default 64). Submissions beyond it fail with ErrQueueFull.
	QueueSize int
	// JobTimeout bounds each job's context (0 means no per-job limit).
	JobTimeout time.Duration
	// Recorder, when non-nil, receives queue metrics: the
	// jobs_queue_depth, jobs_in_flight and jobs_retry_backlog gauges,
	// the jobs_{submitted,rejected,completed}_total counters and the
	// jobs_{wait,run}_seconds histograms.
	Recorder *obs.Recorder
	// Logger, when non-nil, receives structured pool events (panics,
	// dropped retries); nil discards them.
	Logger *slog.Logger
}

// task is one accepted unit of work: either a fire-and-forget fn
// (Submit) or a retryable job (SubmitJob).
type task struct {
	fn       func(context.Context)
	job      *Job
	enqueued time.Time
}

// Pool is a fixed-size worker pool over a bounded FIFO queue. All
// methods are safe for concurrent use.
type Pool struct {
	cfg   Config
	rec   *obs.Recorder
	log   *slog.Logger
	queue chan task
	// inflight counts jobs currently executing on workers, exposed via
	// InFlight for scrape-time gauges and readiness detail.
	inflight atomic.Int64
	// quit is closed by Shutdown: workers drain the queue and exit, and
	// blocked requeues give up. The queue channel itself is never
	// closed, so a backed-off job can block on a send without racing a
	// close.
	quit chan struct{}
	wg   sync.WaitGroup

	// baseCtx parents every job context; cancel aborts running jobs
	// when a Shutdown deadline expires.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	closed bool
	// retryTimers tracks jobs parked in backoff so Shutdown can stop
	// their timers instead of leaking them.
	retryTimers map[*time.Timer]struct{}
}

// New starts a pool with cfg's workers already running.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DiscardLogger()
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		cfg:         cfg,
		rec:         cfg.Recorder,
		log:         cfg.Logger.With("component", "jobs"),
		queue:       make(chan task, cfg.QueueSize),
		quit:        make(chan struct{}),
		baseCtx:     ctx,
		cancel:      cancel,
		retryTimers: make(map[*time.Timer]struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit enqueues fn, failing fast when the queue is full or the pool
// is shutting down. Once Submit returns nil the job will run, even if
// Shutdown begins immediately afterwards.
func (p *Pool) Submit(fn func(ctx context.Context)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.rec.Counter("jobs_rejected_total").Inc()
		return ErrClosed
	}
	select {
	case p.queue <- task{fn: fn, enqueued: time.Now()}:
		p.rec.Counter("jobs_submitted_total").Inc()
		p.rec.Gauge("jobs_queue_depth").Set(float64(len(p.queue)))
		return nil
	default:
		p.rec.Counter("jobs_rejected_total").Inc()
		return ErrQueueFull
	}
}

// QueueDepth returns the number of jobs accepted but not yet started.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// QueueCap returns the queue's capacity.
func (p *Pool) QueueCap() int { return cap(p.queue) }

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.cfg.Workers }

// InFlight returns the number of jobs currently executing on workers.
func (p *Pool) InFlight() int { return int(p.inflight.Load()) }

// RetryBacklog returns the number of jobs parked in backoff awaiting
// their next attempt.
func (p *Pool) RetryBacklog() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.retryTimers)
}

// Shutdown stops intake and drains: workers finish every accepted job.
// If ctx expires first, the contexts of still-running jobs are
// cancelled and ctx.Err() is returned without waiting further (a job
// that ignores its context may still be running). Shutdown is
// idempotent.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.quit)
	}
	// Jobs parked in backoff are dropped, not drained: their journaled
	// attempt_failed records mean a restart resubmits them, and holding
	// shutdown open for an arbitrary backoff would defeat the drain
	// deadline.
	dropped := 0
	for timer := range p.retryTimers {
		if timer.Stop() {
			p.rec.Counter("jobs_retries_dropped_total").Inc()
			dropped++
		}
		delete(p.retryTimers, timer)
	}
	p.rec.Gauge("jobs_retry_backlog").Set(0)
	p.mu.Unlock()
	if dropped > 0 {
		p.log.Warn("dropped parked retries at shutdown", "count", dropped)
	}

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		p.cancel()
		return nil
	case <-ctx.Done():
		p.cancel()
		return ctx.Err()
	}
}

// worker consumes the queue until Shutdown begins, then drains what was
// already accepted and exits.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.queue:
			p.process(t)
		case <-p.quit:
			for {
				select {
				case t := <-p.queue:
					p.process(t)
				default:
					return
				}
			}
		}
	}
}

// process runs one dequeued task with its queue metrics.
func (p *Pool) process(t task) {
	p.rec.Gauge("jobs_queue_depth").Set(float64(len(p.queue)))
	p.rec.Observe("jobs_wait_seconds", time.Since(t.enqueued).Seconds())
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	p.rec.Gauge("jobs_in_flight").Add(1)

	start := time.Now()
	if t.job != nil {
		p.runRetryable(t.job)
	} else if p.runJob(t.fn) {
		p.rec.Counter("jobs_completed_total").Inc()
	} else {
		p.rec.Counter("jobs_failed_total").Inc()
	}

	p.rec.Observe("jobs_run_seconds", time.Since(start).Seconds())
	p.rec.Gauge("jobs_in_flight").Add(-1)
}

// runJob runs one job under its timeout context, reporting whether it
// completed without panicking (panicked jobs count as failed, not
// completed). The cancel is deferred — the earlier call-after-return
// ordering leaked the timeout context's timer goroutine whenever a job
// panicked, and the panic itself killed the worker, permanently
// shrinking the pool and leaving jobs_in_flight stuck. Now a panicking
// job is contained: the timer is released, the panic is counted, and
// the worker lives on.
func (p *Pool) runJob(fn func(context.Context)) (ok bool) {
	ctx := p.baseCtx
	if p.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(p.baseCtx, p.cfg.JobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			p.rec.Counter("jobs_panics_total").Inc()
		}
	}()
	fn(ctx)
	return true
}
