// Retrying job lifecycle: jobs with identities, attempt budgets,
// exponential backoff with jitter between attempts, and a dead-letter
// quarantine for jobs that keep failing. This is the execution model
// under the daemon's crash-safe scan path — the journal records every
// transition these callbacks expose.
//
// Classification. A failed attempt is retried when the failure looks
// transient: a deadline (the per-job timeout firing), a recovered
// panic (*PanicError), or any plain error such as injected I/O faults.
// It is terminal — straight to quarantine, no further attempts — when
// the job was cancelled (context.Canceled: someone decided this job
// should stop) or the error is wrapped with Terminal.
//
// Backoff never holds a worker: a retrying job leaves the pool, waits
// out its delay on a timer, and re-enters the queue. Re-entry never
// sheds the job on a full queue (it waits for a slot); only pool
// shutdown drops a waiting retry, counted in
// jobs_retries_dropped_total — the durable journal's attempt_failed
// record means a restart resubmits it.

package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// DefaultMaxAttempts is a Job's attempt budget when its policy leaves
// it unset.
const DefaultMaxAttempts = 3

// Default backoff window when the policy leaves it unset.
const (
	DefaultRetryBase = 100 * time.Millisecond
	DefaultRetryCap  = 5 * time.Second
)

// PanicError is a recovered panic from a job attempt, classified as
// retryable: scans crash transiently (fault injection, resource
// pressure) and deterministically (poisoned inputs), and the attempt
// budget separates the two.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// terminalError marks a failure that retrying cannot fix.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// Terminal wraps err so the retry lifecycle sends the job straight to
// quarantine instead of retrying. A nil err stays nil.
func Terminal(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err: err}
}

// ErrInterrupted marks an attempt abandoned because the pool was shut
// down mid-run, not failed: when Run returns it (alone or wrapped) the
// lifecycle settles nothing — no completion, no retry, no quarantine —
// so a durable journal's unsettled records re-own the job on restart.
var ErrInterrupted = errors.New("jobs: attempt interrupted by shutdown")

// Retryable classifies a failed attempt: false for Terminal-wrapped
// errors and cancellation, true for everything else (deadlines,
// recovered panics, I/O faults).
func Retryable(err error) bool {
	var te *terminalError
	if errors.As(err, &te) {
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// RetryPolicy shapes a job's attempt budget and backoff schedule.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts, first included
	// (DefaultMaxAttempts when 0; 1 means never retry).
	MaxAttempts int
	// Base is the delay before the second attempt; each further
	// attempt doubles it (DefaultRetryBase when 0).
	Base time.Duration
	// Cap bounds the doubled delay (DefaultRetryCap when 0).
	Cap time.Duration
	// Jitter, when non-nil, replaces the uniform random source used to
	// spread delays (tests pin it for determinism). It must return
	// values in [0, 1).
	Jitter func() float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.Base <= 0 {
		p.Base = DefaultRetryBase
	}
	if p.Cap <= 0 {
		p.Cap = DefaultRetryCap
	}
	if p.Jitter == nil {
		p.Jitter = rand.Float64
	}
	return p
}

// Backoff returns the delay after the attempt-th failure (1-based):
// exponential doubling from Base, bounded by Cap, with equal jitter —
// uniformly drawn from [d/2, d), so consecutive attempts of many
// failing jobs spread out instead of thundering back together, while
// the delay never collapses below half its nominal value.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	d := p.Base
	for i := 1; i < attempt && d < p.Cap; i++ {
		d *= 2
	}
	if d > p.Cap {
		d = p.Cap
	}
	half := d / 2
	return half + time.Duration(p.Jitter()*float64(half))
}

// Job is one identified, retryable unit of work for Pool.SubmitJob.
// The callbacks fire on the worker (OnStart, OnRetry, OnQuarantine,
// OnComplete run sequentially for one job, never concurrently) and
// must not block for long — the daemon journals from them.
type Job struct {
	// ID names the job across attempts (the daemon uses the scan id).
	ID string
	// Run is one attempt. A nil return completes the job; an error is
	// classified by Retryable. Panics are recovered into *PanicError.
	Run func(ctx context.Context) error
	// Retry shapes the attempt budget and backoff (zero value: 3
	// attempts, 100ms base, 5s cap).
	Retry RetryPolicy
	// PriorAttempts seeds the attempt counter — journal replay resumes
	// a job's budget rather than resetting it.
	PriorAttempts int

	// OnStart fires as attempt (1-based, PriorAttempts included)
	// begins.
	OnStart func(attempt int)
	// OnRetry fires when attempt failed retryably with budget left;
	// the job re-enters the queue after backoff.
	OnRetry func(attempt int, err error, backoff time.Duration)
	// OnQuarantine fires when the job dead-letters: attempts is the
	// total spent, err the final failure.
	OnQuarantine func(attempts int, err error)
	// OnComplete fires when an attempt succeeds.
	OnComplete func(attempts int)

	attempt int // attempts consumed so far; worker-goroutine only
}

// SubmitJob enqueues a retryable job, failing fast like Submit when
// the queue is full or the pool is closed. Once accepted the job runs
// until it completes or quarantines; backoff waits happen off-worker.
func (p *Pool) SubmitJob(j *Job) error {
	if j == nil || j.Run == nil {
		return errors.New("jobs: nil job")
	}
	j.attempt = j.PriorAttempts
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.rec.Counter("jobs_rejected_total").Inc()
		return ErrClosed
	}
	select {
	case p.queue <- task{job: j, enqueued: time.Now()}:
		p.rec.Counter("jobs_submitted_total").Inc()
		p.rec.Gauge("jobs_queue_depth").Set(float64(len(p.queue)))
		return nil
	default:
		p.rec.Counter("jobs_rejected_total").Inc()
		return ErrQueueFull
	}
}

// runRetryable executes one attempt of a retryable job and settles or
// reschedules it.
func (p *Pool) runRetryable(j *Job) {
	pol := j.Retry.withDefaults()
	j.attempt++
	attempt := j.attempt
	if j.OnStart != nil {
		j.OnStart(attempt)
	}
	err := p.runAttempt(j.Run)
	var pe *PanicError
	if errors.As(err, &pe) {
		p.log.Error("job attempt panicked", "job_id", j.ID, "attempt", attempt, "panic", fmt.Sprint(pe.Value))
	}
	if err == nil {
		p.rec.Counter("jobs_completed_total").Inc()
		if j.OnComplete != nil {
			j.OnComplete(attempt)
		}
		return
	}
	if errors.Is(err, ErrInterrupted) {
		// Shutdown abandoned the attempt: the job is neither completed
		// nor failed, and settling it here would journal a terminal
		// state for work the restart must still run.
		p.rec.Counter("jobs_interrupted_total").Inc()
		return
	}
	p.rec.Counter("jobs_failed_total").Inc()
	if !Retryable(err) || attempt >= pol.MaxAttempts {
		p.rec.Counter("jobs_quarantined_total").Inc()
		if j.OnQuarantine != nil {
			j.OnQuarantine(attempt, err)
		}
		return
	}
	backoff := pol.Backoff(attempt)
	p.rec.Counter("jobs_retries_total").Inc()
	if j.OnRetry != nil {
		j.OnRetry(attempt, err, backoff)
	}
	p.scheduleRetry(j, backoff)
}

// runAttempt runs one attempt under the per-job timeout, converting a
// panic into *PanicError.
func (p *Pool) runAttempt(fn func(ctx context.Context) error) (err error) {
	ctx := p.baseCtx
	if p.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(p.baseCtx, p.cfg.JobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			p.rec.Counter("jobs_panics_total").Inc()
			err = &PanicError{Value: r}
		}
	}()
	return fn(ctx)
}

// scheduleRetry parks j on a timer for its backoff, then re-enqueues
// it. Timers are tracked so Shutdown can stop them.
func (p *Pool) scheduleRetry(j *Job, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.rec.Counter("jobs_retries_dropped_total").Inc()
		return
	}
	var timer *time.Timer
	timer = time.AfterFunc(d, func() {
		p.mu.Lock()
		delete(p.retryTimers, timer)
		p.rec.Gauge("jobs_retry_backlog").Set(float64(len(p.retryTimers)))
		p.mu.Unlock()
		p.requeue(j)
	})
	p.retryTimers[timer] = struct{}{}
	p.rec.Gauge("jobs_retry_backlog").Set(float64(len(p.retryTimers)))
}

// requeue puts a backed-off job back on the queue. Unlike Submit it
// never sheds on a full queue — the job was accepted long ago — so it
// blocks on the send until a worker frees a slot; a pool shutdown
// wakes the wait and drops the retry instead (the journal re-owns it
// on restart). A send that races shutdown is harmless either way:
// draining workers still empty the queue before exiting, and anything
// left behind is unsettled work the journal replays.
func (p *Pool) requeue(j *Job) {
	select {
	case p.queue <- task{job: j, enqueued: time.Now()}:
		p.rec.Gauge("jobs_queue_depth").Set(float64(len(p.queue)))
	case <-p.quit:
		p.rec.Counter("jobs_retries_dropped_total").Inc()
	}
}
