package jobs

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSubmitRunsAll(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	p := New(Config{Workers: 4, QueueSize: 32, Recorder: rec})
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		if err := p.Submit(func(context.Context) {
			defer wg.Done()
			ran.Add(1)
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran = %d, want 20", got)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	snap := rec.Snapshot()
	if snap.Counters["jobs_submitted_total"] != 20 {
		t.Errorf("jobs_submitted_total = %d", snap.Counters["jobs_submitted_total"])
	}
	if snap.Counters["jobs_completed_total"] != 20 {
		t.Errorf("jobs_completed_total = %d", snap.Counters["jobs_completed_total"])
	}
}

func TestBackpressureWithoutJobLoss(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	p := New(Config{Workers: 1, QueueSize: 2, Recorder: rec})

	// Block the single worker so queued jobs stay queued.
	release := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func(context.Context) {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	var ran atomic.Int64
	accepted := 0
	for p.Submit(func(context.Context) { ran.Add(1) }) == nil {
		accepted++
		if accepted > 2 {
			t.Fatal("queue accepted more than its capacity")
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted = %d, want 2 (QueueSize)", accepted)
	}
	if err := p.Submit(func(context.Context) {}); err != ErrQueueFull {
		t.Fatalf("saturated submit err = %v, want ErrQueueFull", err)
	}

	// Releasing the worker must run every accepted job: rejection sheds
	// only the rejected submission, never accepted ones.
	close(release)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := ran.Load(); got != int64(accepted) {
		t.Fatalf("ran = %d, want %d accepted jobs", got, accepted)
	}
	if got := rec.Snapshot().Counters["jobs_rejected_total"]; got < 1 {
		t.Errorf("jobs_rejected_total = %d, want >= 1", got)
	}
}

func TestShutdownDrainsQueue(t *testing.T) {
	t.Parallel()
	p := New(Config{Workers: 2, QueueSize: 16})
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		if err := p.Submit(func(context.Context) {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("drain ran %d jobs, want all 10", got)
	}
	if err := p.Submit(func(context.Context) {}); err != ErrClosed {
		t.Fatalf("post-shutdown submit err = %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestShutdownDeadlineCancelsRunningJobs(t *testing.T) {
	t.Parallel()
	p := New(Config{Workers: 1, QueueSize: 4})
	cancelled := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func(ctx context.Context) {
		close(started)
		<-ctx.Done()
		close(cancelled)
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown err = %v, want DeadlineExceeded", err)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("running job's context was not cancelled on deadline")
	}
}

func TestJobTimeout(t *testing.T) {
	t.Parallel()
	p := New(Config{Workers: 1, QueueSize: 1, JobTimeout: 10 * time.Millisecond})
	timedOut := make(chan error, 1)
	if err := p.Submit(func(ctx context.Context) {
		select {
		case <-ctx.Done():
			timedOut <- ctx.Err()
		case <-time.After(5 * time.Second):
			timedOut <- nil
		}
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-timedOut:
		if err != context.DeadlineExceeded {
			t.Fatalf("job ctx err = %v, want DeadlineExceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("job did not observe its timeout")
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestTimeoutAndPanicDoNotLeakWorkers pins the regression where a
// panicking job killed its worker (permanently shrinking the pool) and
// leaked its timeout context's timer goroutine. The pool must keep its
// full capacity through panics and timed-out jobs, and the process
// goroutine count must return to its pre-pool baseline after Shutdown.
func TestTimeoutAndPanicDoNotLeakWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()

	rec := obs.NewRecorder()
	p := New(Config{Workers: 2, QueueSize: 32, JobTimeout: 5 * time.Millisecond, Recorder: rec})

	// Panicking jobs and jobs that run to their timeout, interleaved.
	var timedOut atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(2)
		if err := p.Submit(func(context.Context) {
			defer wg.Done()
			panic("synthetic scan crash")
		}); err != nil {
			t.Fatalf("submit panicker %d: %v", i, err)
		}
		if err := p.Submit(func(ctx context.Context) {
			defer wg.Done()
			<-ctx.Done()
			timedOut.Add(1)
		}); err != nil {
			t.Fatalf("submit sleeper %d: %v", i, err)
		}
	}
	wg.Wait()

	// Both workers survived every panic: a fresh job still runs.
	ran := make(chan struct{})
	if err := p.Submit(func(context.Context) { close(ran) }); err != nil {
		t.Fatalf("post-panic submit: %v", err)
	}
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("pool stopped running jobs after panics")
	}
	if got := timedOut.Load(); got != 10 {
		t.Errorf("timed-out jobs observed = %d, want 10", got)
	}
	snap := rec.Snapshot()
	if got := snap.Counters["jobs_panics_total"]; got != 10 {
		t.Errorf("jobs_panics_total = %d, want 10", got)
	}
	if got := snap.Gauges["jobs_in_flight"]; got != 0 {
		t.Errorf("jobs_in_flight = %v, want 0", got)
	}

	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Timer goroutines from expired job contexts unwind asynchronously;
	// poll briefly for the count to settle back to the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d after shutdown, baseline %d: worker or timer leak",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDefaults(t *testing.T) {
	t.Parallel()
	p := New(Config{})
	if p.Workers() < 1 {
		t.Errorf("default workers = %d", p.Workers())
	}
	if cap(p.queue) != 64 {
		t.Errorf("default queue size = %d, want 64", cap(p.queue))
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
