package repro

// End-to-end tests of the command-line binaries: build each command once,
// then drive it the way a user would.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildOnce compiles the commands a single time per test run.
var (
	buildGuard sync.Once
	binDir     string
	buildErr   error
)

// binaries builds (once) and returns the directory holding the command
// binaries.
func binaries(t *testing.T) string {
	t.Helper()
	buildGuard.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "phpsafe-bins-")
		if buildErr != nil {
			return
		}
		for _, cmd := range []string{"phpsafe", "phpsafed", "corpusgen", "evalrepro"} {
			out, err := exec.Command("go", "build", "-o",
				filepath.Join(binDir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = err
				_ = out
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building commands: %v", buildErr)
	}
	return binDir
}

// vulnerablePlugin is a small fixture with one finding per class family.
const vulnerablePlugin = `<?php
function fixture_hook() {
	echo $_GET['q'];
}
`

// writeFixture writes the fixture plugin and returns its path.
func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture.php")
	if err := os.WriteFile(path, []byte(vulnerablePlugin), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIPhpsafeFindings(t *testing.T) {
	t.Parallel()
	bin := filepath.Join(binaries(t), "phpsafe")
	out, err := exec.Command(bin, writeFixture(t)).CombinedOutput()
	// Exit status 1 == findings exist.
	if code := exitCode(err); code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(string(out), "[XSS] GET") {
		t.Fatalf("output missing finding:\n%s", out)
	}
}

func TestCLIPhpsafeCleanFileExitsZero(t *testing.T) {
	t.Parallel()
	bin := filepath.Join(binaries(t), "phpsafe")
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.php")
	if err := os.WriteFile(clean, []byte("<?php echo 'hello';"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, clean).CombinedOutput()
	if code := exitCode(err); code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestCLIPhpsafeJSON(t *testing.T) {
	t.Parallel()
	bin := filepath.Join(binaries(t), "phpsafe")
	out, _ := exec.Command(bin, "-json", writeFixture(t)).Output()
	var doc struct {
		Tool     string `json:"tool"`
		Findings []struct {
			Class string `json:"class"`
			Line  int    `json:"line"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if doc.Tool != "phpSAFE" || len(doc.Findings) != 1 || doc.Findings[0].Class != "XSS" {
		t.Fatalf("unexpected JSON: %+v", doc)
	}
}

func TestCLIPhpsafeReports(t *testing.T) {
	t.Parallel()
	bin := filepath.Join(binaries(t), "phpsafe")
	dir := t.TempDir()
	htmlPath := filepath.Join(dir, "r.html")
	sarifPath := filepath.Join(dir, "r.sarif")
	cmd := exec.Command(bin, "-html", htmlPath, "-sarif", sarifPath, writeFixture(t))
	if out, err := cmd.CombinedOutput(); exitCode(err) != 1 {
		t.Fatalf("exit = %d; output:\n%s", exitCode(err), out)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil || !strings.Contains(string(html), "<!DOCTYPE html>") {
		t.Fatalf("HTML report bad: %v", err)
	}
	sarif, err := os.ReadFile(sarifPath)
	if err != nil || !strings.Contains(string(sarif), "phpsafe/xss") {
		t.Fatalf("SARIF report bad: %v", err)
	}
}

func TestCLIPhpsafeToolSelection(t *testing.T) {
	t.Parallel()
	bin := filepath.Join(binaries(t), "phpsafe")
	fixture := writeFixture(t)

	// RIPS sees the uncalled function's flow too.
	out, err := exec.Command(bin, "-tool", "rips", fixture).CombinedOutput()
	if exitCode(err) != 1 || !strings.Contains(string(out), "RIPS") {
		t.Fatalf("rips run: exit=%d\n%s", exitCode(err), out)
	}
	// Pixy does not analyze uncalled functions: no findings.
	out, err = exec.Command(bin, "-tool", "pixy", fixture).CombinedOutput()
	if exitCode(err) != 0 || !strings.Contains(string(out), "Pixy") {
		t.Fatalf("pixy run: exit=%d\n%s", exitCode(err), out)
	}
	// Unknown tool → usage error.
	_, err = exec.Command(bin, "-tool", "nonsense", fixture).CombinedOutput()
	if exitCode(err) != 2 {
		t.Fatalf("unknown tool exit = %d, want 2", exitCode(err))
	}
}

func TestCLIPhpsafeModel(t *testing.T) {
	t.Parallel()
	bin := filepath.Join(binaries(t), "phpsafe")
	out, err := exec.Command(bin, "-model", writeFixture(t)).CombinedOutput()
	if exitCode(err) != 0 {
		t.Fatalf("exit = %d\n%s", exitCode(err), out)
	}
	if !strings.Contains(string(out), "fixture_hook") || !strings.Contains(string(out), "*") {
		t.Fatalf("model output missing uncalled marker:\n%s", out)
	}
}

func TestCLICorpusgenAndScan(t *testing.T) {
	t.Parallel()
	bins := binaries(t)
	outDir := t.TempDir()

	gen := exec.Command(filepath.Join(bins, "corpusgen"), "-out", outDir)
	if out, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("corpusgen: %v\n%s", err, out)
	}
	// The materialized plugin scans with findings.
	plugin := filepath.Join(outDir, "2014", "mail-subscribe-list")
	out, err := exec.Command(filepath.Join(bins, "phpsafe"), plugin).CombinedOutput()
	if exitCode(err) != 1 {
		t.Fatalf("scan exit = %d\n%s", exitCode(err), out)
	}
	if !strings.Contains(string(out), "finding(s)") {
		t.Fatalf("scan output:\n%s", out)
	}
	// Labels file exists with both record types.
	labels, err := os.ReadFile(filepath.Join(outDir, "2012", "labels.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(labels), "vuln\t") || !strings.Contains(string(labels), "trap\t") {
		t.Fatal("labels.tsv missing record types")
	}
}

func TestCLIEvalreproSingleTable(t *testing.T) {
	t.Parallel()
	bin := filepath.Join(binaries(t), "evalrepro")
	cmd := exec.Command(bin, "-table", "2")
	// The default BENCH_eval.json artifact lands in the working
	// directory; keep test runs from touching the checkout.
	cmd.Dir = t.TempDir()
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("evalrepro: %v", err)
	}
	for _, want := range []string{"TABLE II", "DB", "211", "363", "162"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("Table II output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(filepath.Join(cmd.Dir, "BENCH_eval.json")); err != nil {
		t.Fatalf("BENCH_eval.json artifact not written: %v", err)
	}
}

func TestCLIVersionFlags(t *testing.T) {
	t.Parallel()
	bins := binaries(t)
	for _, cmd := range []string{"phpsafe", "phpsafed"} {
		out, err := exec.Command(filepath.Join(bins, cmd), "-version").CombinedOutput()
		if err != nil {
			t.Fatalf("%s -version: %v\n%s", cmd, err, out)
		}
		if !strings.Contains(string(out), "phpSAFE-repro") {
			t.Errorf("%s -version output = %q", cmd, out)
		}
	}
}

// exitCode extracts a process exit code (0 when err is nil).
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

func TestCLIPhpsafeIncCache(t *testing.T) {
	t.Parallel()
	bin := filepath.Join(binaries(t), "phpsafe")
	cacheDir := filepath.Join(t.TempDir(), "inc")
	fixture := writeFixture(t)

	run := func() (string, string) {
		cmd := exec.Command(bin, "-inc-cache", cacheDir, fixture)
		var stdout, stderr strings.Builder
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		if code := exitCode(err); code != 1 {
			t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}

	out1, err1 := run()
	if !strings.Contains(err1, "reused 0/1 files") {
		t.Fatalf("cold scan stderr = %q, want a 0-reuse line", err1)
	}
	out2, err2 := run()
	if !strings.Contains(err2, "reused 1/1 files (100%)") {
		t.Fatalf("warm scan stderr = %q, want full reuse", err2)
	}
	if out1 != out2 {
		t.Fatalf("warm output differs from cold:\n%s\nvs\n%s", out1, out2)
	}
}

func TestCLIPhpsafeDiff(t *testing.T) {
	t.Parallel()
	bin := filepath.Join(binaries(t), "phpsafe")
	oldDir, newDir := t.TempDir(), t.TempDir()
	oldSrc := "<?php\necho $_GET['q'];\nmysql_query('x' . $_POST['p']);\n"
	newSrc := "<?php\necho htmlspecialchars($_GET['q']);\nmysql_query('x' . $_POST['p']);\n"
	if err := os.WriteFile(filepath.Join(oldDir, "p.php"), []byte(oldSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(newDir, "p.php"), []byte(newSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "-diff", oldDir, newDir).CombinedOutput()
	// The SQLi persists, so the diff exits 1.
	if code := exitCode(err); code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	text := string(out)
	if !strings.Contains(text, "1 fixed, 1 persisting, 0 introduced") {
		t.Fatalf("diff summary missing:\n%s", text)
	}

	out, err = exec.Command(bin, "-diff", "-json", oldDir, newDir).CombinedOutput()
	if code := exitCode(err); code != 1 {
		t.Fatalf("json diff exit = %d, want 1; output:\n%s", code, out)
	}
	var doc struct {
		Fixed      int `json:"fixed"`
		Persisting int `json:"persisting"`
		Introduced int `json:"introduced"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("diff -json output not JSON: %v\n%s", err, out)
	}
	if doc.Fixed != 1 || doc.Persisting != 1 || doc.Introduced != 0 {
		t.Fatalf("diff -json = %+v, want 1/1/0", doc)
	}

	// A fully fixed new version exits 0.
	if err := os.WriteFile(filepath.Join(newDir, "p.php"),
		[]byte("<?php\necho htmlspecialchars($_GET['q']);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-diff", oldDir, newDir).CombinedOutput()
	if code := exitCode(err); code != 0 {
		t.Fatalf("clean diff exit = %d, want 0; output:\n%s", code, out)
	}
}
