// CI gate: use the analyzer as a library inside a delivery pipeline, the
// integration mode the paper describes in §III ("the use of phpSAFE can
// be part of the software development lifecycle of a company").
//
// The example audits two revisions of the same plugin: the baseline
// revision's findings are accepted as known debt, and the gate fails only
// when the new revision introduces NEW findings — exactly how a team
// would adopt a static analyzer on a legacy plugin without fixing
// everything at once.
//
// Run with:
//
//	go run ./examples/ci-gate
package main

import (
	"fmt"
	"os"

	"repro/internal/analyzer"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

// baselineRevision is the plugin as currently shipped (with a known,
// accepted finding).
const baselineRevision = `<?php
function gallery_show() {
	echo '<h1>' . $_GET['album'] . '</h1>'; // known debt, ticket #142
}
gallery_show();
`

// newRevision adds a feature — and, accidentally, a new SQL injection.
const newRevision = `<?php
function gallery_show() {
	echo '<h1>' . $_GET['album'] . '</h1>'; // known debt, ticket #142
}
function gallery_delete() {
	global $wpdb;
	$wpdb->query("DELETE FROM {$wpdb->prefix}albums WHERE id=" . $_GET['id']);
}
gallery_show();
`

func main() {
	engine := taint.New(wordpress.Compiled(), taint.DefaultOptions())

	baseline := mustScan(engine, "gallery", baselineRevision)
	accepted := make(map[string]bool, len(baseline.Findings))
	for _, f := range baseline.Findings {
		accepted[f.Key()] = true
	}
	fmt.Printf("baseline: %d accepted finding(s)\n", len(accepted))

	current := mustScan(engine, "gallery", newRevision)
	var fresh []analyzer.Finding
	for _, f := range current.Findings {
		if !accepted[f.Key()] {
			fresh = append(fresh, f)
		}
	}

	if len(fresh) == 0 {
		fmt.Println("gate PASSED: no new vulnerabilities introduced")
		return
	}
	fmt.Printf("gate FAILED: %d new finding(s):\n", len(fresh))
	for _, f := range fresh {
		fmt.Println("  " + f.String())
	}
	os.Exit(1)
}

// mustScan analyzes one in-memory revision.
func mustScan(engine *taint.Engine, name, src string) *analyzer.Result {
	res, err := engine.Analyze(&analyzer.Target{
		Name:  name,
		Files: []analyzer.SourceFile{{Path: name + ".php", Content: src}},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ci-gate: %v\n", err)
		os.Exit(2)
	}
	return res
}
