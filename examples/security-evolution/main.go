// Security evolution: track a plugin's vulnerabilities across its 2012
// and 2014 releases — the paper's §V.D inertia analysis and its §VI
// future work ("study the evolution of plugin security and plugin
// updates over time by enabling historic data") as a library feature.
//
// Run with:
//
//	go run ./examples/security-evolution [plugin-name]
package main

import (
	"fmt"
	"os"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/evolution"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

func main() {
	want := "wp-photo-album-plus"
	if len(os.Args) > 1 {
		want = os.Args[1]
	}

	c2012, c2014 := corpus.MustGenerate()
	old, now := c2012.Target(want), c2014.Target(want)
	if old == nil || now == nil {
		fmt.Fprintf(os.Stderr, "unknown plugin %q\n", want)
		os.Exit(2)
	}

	engine := taint.New(wordpress.Compiled(), taint.DefaultOptions())
	oldRes := mustAnalyze(engine, old)
	newRes := mustAnalyze(engine, now)

	history, err := evolution.Track(
		[]string{"2012", "2014"},
		[]*analyzer.Result{oldRes, newRes},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(history.Summary())

	step := history.Steps[0]
	fmt.Printf("\npersisting share: %.0f%% of the %s findings were already\n",
		step.PersistShare()*100, step.NewVersion)
	fmt.Printf("reported against the %s release (the paper's §V.D inertia:\n",
		step.OldVersion)
	fmt.Println("42% across the whole corpus, one year after disclosure).")

	fmt.Println("\npersisting vulnerabilities (still unfixed after disclosure):")
	for _, c := range step.Changes {
		if c.Status == evolution.Persisting {
			fmt.Println("  " + c.Finding.String())
		}
	}
}

// mustAnalyze runs the engine or exits.
func mustAnalyze(engine *taint.Engine, target *analyzer.Target) *analyzer.Result {
	res, err := engine.Analyze(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}
