// Custom CMS rule pack: extend the analyzer's configuration to a
// different framework — the paper's §III.A extensibility claim ("this
// ability can be easily extended to other CMSs, by adding their input,
// filtering and sink functions to the configuration files") and its §VI
// future work (Drupal, Joomla).
//
// The framework knowledge lives entirely in joomla-like.json, a rule
// pack: a JSON document declaring the fictional CMS's database object,
// escaping API and input wrapper, layered on the builtin "generic" pack
// via "extends". No Go code is needed to teach the analyzer a new CMS —
// the same file also works with the scanners directly:
//
//	phpsafe -rule-pack examples/custom-cms/joomla-like.json <plugin-dir>
//	phpsafe rules lint examples/custom-cms/joomla-like.json
//
// or with the daemon, by POSTing {"rule_packs": ["joomla-like"]} after
// registering the pack.
//
// The example scans the same plugin with and without the framework
// knowledge: the framework-blind scan both misses a real vulnerability
// and raises a false alarm.
//
// Run with:
//
//	go run ./examples/custom-cms
package main

import (
	_ "embed"
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/rulepack"
	"repro/internal/taint"
)

//go:embed joomla-like.json
var packJSON []byte

// extension is a plugin for the fictional CMS.
const extension = `<?php
function render_items() {
	global $db;
	$rows = $db->loadObjectList();
	foreach ($rows as $row) {
		echo '<td>' . $row->title . '</td>';        // real XSS: DB data
	}
}

function search_items() {
	global $db;
	$term = $_GET['q'];
	$db->setQuery("SELECT * FROM #__items WHERE title = " . $db->quote($term));
	echo '<p>' . jhtml_escape($term) . '</p>';      // escaped: safe
}

render_items();
search_items();
`

func main() {
	target := &analyzer.Target{
		Name:  "joomla-like-extension",
		Files: []analyzer.SourceFile{{Path: "extension.php", Content: extension}},
	}

	// Load and validate the pack, then register it so its "extends"
	// chain resolves against the builtin packs.
	pack, err := rulepack.Load(packJSON)
	if err != nil {
		panic(err)
	}
	reg := rulepack.NewRegistry()
	reg.Register(pack)

	// Framework-aware scan: generic PHP + the custom CMS layer.
	aware, err := reg.Compile("joomla-like")
	if err != nil {
		panic(err)
	}
	scan(taint.New(aware, taint.DefaultOptions()), target,
		"WITH the joomla-like pack")

	// Framework-blind scan: generic PHP only.
	blind, err := reg.Compile("generic")
	if err != nil {
		panic(err)
	}
	scan(taint.New(blind, taint.DefaultOptions()), target,
		"WITHOUT framework knowledge")

	fmt.Println("With the pack, the analyzer sees the loadObjectList rows as a")
	fmt.Println("database source (1 real XSS), knows $db->quote protects the query")
	fmt.Println("and that jhtml_escape is safe. Without it, the real vulnerability")
	fmt.Println("disappears AND the escaped echo becomes a false alarm — the paper's")
	fmt.Println("§III.A argument for CMS-aware configuration, expressed as a JSON")
	fmt.Println("rule pack instead of code.")
}

// scan runs one configuration and prints a summary.
func scan(engine *taint.Engine, target *analyzer.Target, label string) {
	res, err := engine.Analyze(target)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d finding(s)\n", label, len(res.Findings))
	for _, f := range res.Findings {
		fmt.Println("  " + f.String())
	}
	fmt.Println()
}
