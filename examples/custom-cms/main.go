// Custom CMS profile: extend the analyzer's configuration to a different
// framework — the paper's §III.A extensibility claim ("this ability can
// be easily extended to other CMSs, by adding their input, filtering and
// sink functions to the configuration files") and its §VI future work
// (Drupal, Joomla).
//
// The example defines a small profile for a fictional "Joomla-like" CMS
// with its own database object, escaping API and input wrapper, then
// shows that the same plugin scans very differently with and without the
// framework knowledge: the framework-blind scan both misses a real
// vulnerability and raises a false alarm.
//
// Run with:
//
//	go run ./examples/custom-cms
package main

import (
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/config"
	"repro/internal/taint"
)

// joomlaLikeProfile models the fictional CMS: JFactory-style database
// access, JInput request wrappers, and an escaping helper.
func joomlaLikeProfile() config.Profile {
	xss := []analyzer.VulnClass{analyzer.XSS}
	sqli := []analyzer.VulnClass{analyzer.SQLi}
	return config.Profile{
		Name: "joomla-like",
		Sources: []config.Source{
			// $db->loadObjectList() returns attacker-poisonable rows.
			{Kind: config.MethodSource, Class: "jdatabase", Name: "loadobjectlist",
				Vector: analyzer.VectorDB, Taints: xss},
			{Kind: config.MethodSource, Class: "jdatabase", Name: "loadresult",
				Vector: analyzer.VectorDB, Taints: xss},
			// $input->getString('x') wraps the request.
			{Kind: config.MethodSource, Class: "jinput", Name: "getstring",
				Vector: analyzer.VectorRequest},
		},
		Sanitizers: []config.Sanitizer{
			{Name: "jhtml_escape", Untaints: xss},
			{Class: "jdatabase", Name: "quote", Untaints: sqli},
			// $input->getInt() returns an integer: safe everywhere.
			{Class: "jinput", Name: "getint"},
		},
		Sinks: []config.Sink{
			{Class: "jdatabase", Name: "setquery", Vuln: analyzer.SQLi, Args: []int{0}},
		},
		ObjectClasses: map[string]string{
			"db":    "jdatabase",
			"input": "jinput",
		},
	}
}

// extension is a plugin for the fictional CMS.
const extension = `<?php
function render_items() {
	global $db;
	$rows = $db->loadObjectList();
	foreach ($rows as $row) {
		echo '<td>' . $row->title . '</td>';        // real XSS: DB data
	}
}

function search_items() {
	global $db;
	$term = $_GET['q'];
	$db->setQuery("SELECT * FROM #__items WHERE title = " . $db->quote($term));
	echo '<p>' . jhtml_escape($term) . '</p>';      // escaped: safe
}

render_items();
search_items();
`

func main() {
	target := &analyzer.Target{
		Name:  "joomla-like-extension",
		Files: []analyzer.SourceFile{{Path: "extension.php", Content: extension}},
	}

	// Framework-aware scan: generic PHP + the custom CMS layer.
	aware := config.Compile(config.Merge("generic+joomla-like",
		config.Generic(), joomlaLikeProfile()))
	scan(taint.New(aware, taint.DefaultOptions()), target,
		"WITH the joomla-like profile")

	// Framework-blind scan: generic PHP only.
	blind := config.Compile(config.Generic())
	scan(taint.New(blind, taint.DefaultOptions()), target,
		"WITHOUT framework knowledge")

	fmt.Println("With the profile, the analyzer sees the loadObjectList rows as a")
	fmt.Println("database source (1 real XSS), knows $db->quote protects the query")
	fmt.Println("and that jhtml_escape is safe. Without it, the real vulnerability")
	fmt.Println("disappears AND the escaped echo becomes a false alarm — the paper's")
	fmt.Println("§III.A argument for CMS-aware configuration, applied to a new CMS")
	fmt.Println("in about 40 lines.")
}

// scan runs one configuration and prints a summary.
func scan(engine *taint.Engine, target *analyzer.Target, label string) {
	res, err := engine.Analyze(target)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d finding(s)\n", label, len(res.Findings))
	for _, f := range res.Findings {
		fmt.Println("  " + f.String())
	}
	fmt.Println()
}
