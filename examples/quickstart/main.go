// Quickstart: scan a small vulnerable WordPress plugin held in memory and
// print the findings with their data-flow traces.
//
// The embedded plugin reproduces the paper's two motivating examples
// (DSN 2015, §III.E and §V.C): database rows echoed without sanitization
// through WordPress objects, and a direct $_POST echo.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/report"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

// pluginSource is a condensed vulnerable plugin, adapted from the
// mail-subscribe-list and wp-symposium patterns the paper quotes.
const pluginSource = `<?php
/**
 * Plugin Name: Mail Subscribe Demo
 */

add_action('admin_menu', 'sml_admin_page');

function sml_show_list() {
	global $wpdb;
	$results = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");
	foreach ($results as $row) {
		echo '<li>' . $row->sml_name . '</li>';
	}
}

function sml_admin_page() {
	// Direct POST echo (the wp-symposium pattern).
	echo 'Created ' . $_POST['img_path'] . '.';

	// Properly escaped output: not a finding.
	echo '<h2>' . esc_html($_GET['title']) . '</h2>';
}

sml_show_list();
`

func main() {
	// phpSAFE ships ready for WordPress plugins out of the box (§III.A):
	// generic PHP knowledge plus the WordPress sources, sanitizers and
	// sinks.
	engine := taint.New(wordpress.Compiled(), taint.DefaultOptions())

	target := &analyzer.Target{
		Name: "mail-subscribe-demo",
		Files: []analyzer.SourceFile{
			{Path: "mail-subscribe-demo.php", Content: pluginSource},
		},
	}

	result, err := engine.Analyze(target)
	if err != nil {
		panic(err)
	}
	fmt.Print(report.Findings(result))

	fmt.Println("\nExpected: two XSS findings —")
	fmt.Println("  1. the $wpdb->get_results rows echoed in sml_show_list (DB vector,")
	fmt.Println("     only detectable with OOP analysis, §III.E), and")
	fmt.Println("  2. the direct $_POST echo in sml_admin_page (an uncalled hook")
	fmt.Println("     function, §III.B). The esc_html output is correctly ignored.")
}
