// WordPress plugin audit: generate one synthetic plugin from the corpus,
// audit it with all three analyzers, and summarize what each tool sees —
// a miniature of the paper's evaluation (DSN 2015, §IV-V) on a single
// plugin.
//
// Run with:
//
//	go run ./examples/wordpress-audit [plugin-name]
package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/eval"
)

func main() {
	want := "mail-subscribe-list"
	if len(os.Args) > 1 {
		want = os.Args[1]
	}

	_, c2014 := corpus.MustGenerate()
	target := c2014.Target(want)
	if target == nil {
		fmt.Fprintf(os.Stderr, "unknown plugin %q; available:\n", want)
		for _, t := range c2014.Targets {
			fmt.Fprintf(os.Stderr, "  %s\n", t.Name)
		}
		os.Exit(2)
	}

	fmt.Printf("Auditing %s (2014 snapshot): %d files, %d lines\n\n",
		target.Name, len(target.Files), target.Lines())

	truthLines := truthIndex(c2014, target.Name)
	fmt.Printf("Ground truth: %d seeded vulnerabilities in this plugin\n\n", len(truthLines))

	for _, tool := range eval.DefaultTools() {
		res, err := tool.AnalyzeContext(context.Background(), target, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool.Name(), err)
			os.Exit(1)
		}
		summarize(res, truthLines)
	}

	fmt.Println("The gap between the tools is the paper's core point: only an")
	fmt.Println("OOP-aware, WordPress-aware analyzer sees the $wpdb flows, and only")
	fmt.Println("tools that analyze uncalled hook functions see the plugin's real")
	fmt.Println("attack surface.")
}

// truthIndex collects the seeded sink locations of one plugin.
func truthIndex(c *corpus.Corpus, plugin string) map[string]bool {
	idx := make(map[string]bool)
	for _, g := range c.Truths {
		if g.Plugin == plugin {
			idx[fmt.Sprintf("%s:%d:%s", g.File, g.Line, g.Class)] = true
		}
	}
	return idx
}

// summarize prints one tool's outcome against the plugin's ground truth.
func summarize(res *analyzer.Result, truths map[string]bool) {
	tp, fp := 0, 0
	byVector := make(map[string]int)
	for _, f := range res.Findings {
		if truths[f.Key()] {
			tp++
			byVector[f.Vector.TableIIRow()]++
		} else {
			fp++
		}
	}
	fmt.Printf("%-8s found %2d true vulnerabilities, %2d false alarms "+
		"(%d/%d files analyzed)\n",
		res.Tool, tp, fp, res.FilesAnalyzed, res.FilesAnalyzed+len(res.FilesFailed))
	vectors := make([]string, 0, len(byVector))
	for v := range byVector {
		vectors = append(vectors, v)
	}
	sort.Strings(vectors)
	for _, v := range vectors {
		fmt.Printf("           %-22s %d\n", v, byVector[v])
	}
	fmt.Println()
}
