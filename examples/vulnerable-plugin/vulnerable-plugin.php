<?php
/**
 * Plugin Name: Vulnerable Plugin (fixture)
 *
 * A deliberately vulnerable WordPress-style plugin used by the README
 * curl examples and the CI smoke test for the phpsafed daemon. Each
 * sink below is a pattern from the paper's §V.C root-cause classes.
 */

// Reflected XSS: attacker-controlled $_GET flows straight to echo.
function vp_show_banner() {
	$title = $_GET['title'];
	echo '<h2>' . $title . '</h2>';
}

// SQL injection: $_POST concatenated into a query string.
function vp_lookup_user() {
	$login = $_POST['login'];
	mysql_query("SELECT * FROM users WHERE login='" . $login . "'");
}
