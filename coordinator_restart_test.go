package repro

// Coordinator-restart adoption smoke test: boot a real coordinator +
// 2 real workers as separate phpsafed processes (workers with their
// own dispatch journals), put a batch of scans in flight, SIGKILL the
// coordinator, restart it on the same journal — and require that the
// replayed scans are ADOPTED from the workers' in-flight tables rather
// than resubmitted: every scan settles done, at least one trace
// records an adopted event, and each scan has exactly one
// dispatch_started record across all worker journals (a resubmission
// would have left a second).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// adoptPHP is much heavier than fleetPHP: the batch must still be in
// flight on single-slot workers when the coordinator is killed, so
// each scan needs hundreds of milliseconds of analysis.
func adoptPHP(name string) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "<?php // %s\n", name)
	b.WriteString("$base = $_GET['q'];\n")
	for i := 0; i < 2500; i++ {
		fmt.Fprintf(&b, "$v%d = $base . 'x%d';\n", i, i)
	}
	b.WriteString("echo $v2499;\n")
	b.WriteString("mysql_query(\"SELECT * FROM t WHERE k='\" . $_POST['user'] . \"'\");\n")
	return b.String()
}

func TestCoordinatorRestartAdoptsInflight(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	bins := binaries(t)
	daemon := filepath.Join(bins, "phpsafed")
	coordJournal := t.TempDir()
	w1Journal := t.TempDir()
	w2Journal := t.TempDir()

	reserve := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	w1Addr, w2Addr, coordAddr := reserve(), reserve(), reserve()

	var logs syncBuffer
	start := func(args ...string) *exec.Cmd {
		cmd := exec.Command(daemon, args...)
		cmd.Stdout = &logs
		cmd.Stderr = &logs
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting phpsafed %v: %v", args, err)
		}
		return cmd
	}
	stop := func(cmd *exec.Cmd) {
		if cmd == nil || cmd.ProcessState != nil {
			return
		}
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
	waitHealthy := func(addr string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("daemon on %s never became healthy; logs:\n%s", addr, logs.String())
	}

	// Workers: single pool slot so the batch queues deep (scans still in
	// flight when the coordinator dies), each with its own dispatch
	// journal. -pool-workers is the new spelling of the old -workers
	// count.
	worker1 := start("-role=worker", "-addr", w1Addr, "-pool-workers", "1", "-queue", "32",
		"-advertise", "http://"+w1Addr, "-journal", w1Journal)
	defer stop(worker1)
	worker2 := start("-role=worker", "-addr", w2Addr, "-pool-workers", "1", "-queue", "32",
		"-advertise", "http://"+w2Addr, "-journal", w2Journal)
	defer stop(worker2)
	waitHealthy(w1Addr)
	waitHealthy(w2Addr)

	coordArgs := []string{"-role=coordinator", "-addr", coordAddr,
		"-fleet-workers", "http://" + w1Addr + ",http://" + w2Addr,
		"-journal", coordJournal, "-queue", "64",
		"-heartbeat-interval", "100ms",
		"-max-attempts", "8", "-retry-base", "20ms", "-retry-cap", "200ms"}
	coord := start(coordArgs...)
	coordStopped := false
	defer func() {
		if !coordStopped {
			stop(coord)
		}
	}()
	waitHealthy(coordAddr)

	submit := func(name string) string {
		t.Helper()
		body, _ := json.Marshal(map[string]any{
			"name":  name,
			"files": map[string]string{name + ".php": adoptPHP(name)},
		})
		resp, err := http.Post("http://"+coordAddr+"/v1/scans", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("submitting %s: %v", name, err)
		}
		defer resp.Body.Close()
		var sc crashScanView
		if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
			t.Fatalf("decoding %s submission: %v", name, err)
		}
		if sc.ID == "" {
			t.Fatalf("submission %s returned no id (HTTP %d)", name, resp.StatusCode)
		}
		return sc.ID
	}

	names := make([]string, 0, 8)
	ids := make(map[string]string, 8)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("adopt%02d", i)
		names = append(names, name)
		ids[name] = submit(name)
	}

	// Wait until the workers actually carry unsettled dispatches — the
	// kill must land with work in flight for adoption to have anything
	// to adopt.
	unsettledInflight := func() int {
		n := 0
		for _, wa := range []string{w1Addr, w2Addr} {
			resp, err := http.Get("http://" + wa + "/internal/v1/inflight")
			if err != nil {
				continue
			}
			var body struct {
				Dispatches []struct {
					State string `json:"state"`
				} `json:"dispatches"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err != nil {
				continue
			}
			for _, d := range body.Dispatches {
				switch d.State {
				case "queued", "running":
					n++
				}
			}
		}
		return n
	}
	deadline := time.Now().Add(10 * time.Second)
	for unsettledInflight() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never reported unsettled dispatches; logs:\n%s", logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SIGKILL the coordinator mid-batch and restart it on the same
	// journal and address.
	if err := coord.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("killing coordinator: %v", err)
	}
	coord.Wait()
	coordStopped = true

	coord2 := start(coordArgs...)
	defer stop(coord2)
	waitHealthy(coordAddr)

	// Every scan settles done on the restarted coordinator.
	waitSettled := func(id string) crashScanView {
		t.Helper()
		settleBy := time.Now().Add(60 * time.Second)
		for time.Now().Before(settleBy) {
			resp, err := http.Get("http://" + coordAddr + "/v1/scans/" + id)
			if err != nil {
				time.Sleep(25 * time.Millisecond)
				continue
			}
			var sc crashScanView
			err = json.NewDecoder(resp.Body).Decode(&sc)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("decoding scan %s: %v", id, err)
			}
			switch sc.Status {
			case "done", "failed", "cancelled", "quarantined":
				return sc
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("scan %s never settled after restart; logs:\n%s", id, logs.String())
		return crashScanView{}
	}
	for _, name := range names {
		sc := waitSettled(ids[name])
		if sc.Status != "done" {
			t.Fatalf("scan %s = %s (%s) after coordinator restart, want done; logs:\n%s",
				name, sc.Status, sc.Error, logs.String())
		}
	}

	// At least one replayed scan must have been adopted from a worker's
	// in-flight table — the restart happened mid-batch, so the workers
	// were still carrying work.
	adopted := 0
	for _, name := range names {
		resp, err := http.Get("http://" + coordAddr + "/v1/scans/" + ids[name] + "/trace")
		if err != nil {
			t.Fatalf("trace %s: %v", name, err)
		}
		var tr struct {
			Events []obs.Event `json:"events"`
		}
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding trace %s: %v", name, err)
		}
		for _, ev := range tr.Events {
			if ev.Type == "adopted" {
				adopted++
				break
			}
		}
	}
	if adopted == 0 {
		t.Errorf("no scan trace records an adopted event after coordinator restart; logs:\n%s", logs.String())
	}
	t.Logf("adopted %d of %d scans", adopted, len(names))

	// The no-duplicate-attempt check: across both worker dispatch
	// journals, every scan has exactly one dispatch_started record. A
	// coordinator that resubmitted instead of adopting would have left
	// a second record (on this worker via a fresh attempt epoch, or on
	// the peer via handoff).
	idToName := make(map[string]string, len(ids))
	for name, id := range ids {
		idToName[id] = name
	}
	started := make(map[string]int, len(ids))
	for _, dir := range []string{w1Journal, w2Journal} {
		for _, file := range []string{"wal.jsonl", "snapshot.jsonl"} {
			f, err := os.Open(filepath.Join(dir, file))
			if err != nil {
				continue
			}
			scanner := bufio.NewScanner(f)
			scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
			for scanner.Scan() {
				// Journal lines are "crc8hex json" — strip the checksum
				// prefix before decoding.
				line := scanner.Bytes()
				if sp := bytes.IndexByte(line, ' '); sp >= 0 {
					line = line[sp+1:]
				}
				var rec struct {
					Type string `json:"type"`
					Scan string `json:"scan"`
				}
				if json.Unmarshal(line, &rec) != nil {
					continue
				}
				if rec.Type == "dispatch_started" {
					started[rec.Scan]++
				}
			}
			f.Close()
		}
	}
	for name, id := range ids {
		if got := started[id]; got != 1 {
			t.Errorf("scan %s: %d dispatch_started records across worker journals, want exactly 1 (adoption, not resubmission)",
				name, got)
		}
	}
}
