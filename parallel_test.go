package repro

// End-to-end guarantees of the intra-scan parallel pipeline: the
// FileWorkers knob changes wall-clock behavior only, never output.
// Every engine × pack-set combination must render byte-identical JSON
// and SARIF whether the per-file stages run serially or on a saturated
// worker pool, failures injected into parallel workers must accumulate
// deterministically, and a mid-pipeline cancellation must settle inside
// the same bounds the serial degradation ladder guarantees.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/govern"
	"repro/internal/report"
)

// renderScan runs one engine over one target at the given worker count
// and renders both interchange formats.
func renderScan(t *testing.T, eng analyzer.Analyzer, target *analyzer.Target, workers int) (jsonBytes, sarifBytes []byte) {
	t.Helper()
	opts := &analyzer.ScanOptions{FileWorkers: workers}
	res, err := eng.AnalyzeContext(context.Background(), target, opts)
	if err != nil {
		t.Fatalf("%s/%s workers=%d: %v", eng.Name(), target.Name, workers, err)
	}
	jsonBytes, err = json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	sarifBytes, err = report.SARIF(res)
	if err != nil {
		t.Fatal(err)
	}
	return jsonBytes, sarifBytes
}

// TestFileWorkersDifferential sweeps the full 2014 corpus through every
// engine and pack set at FileWorkers=1 and FileWorkers=8 and requires
// byte-identical JSON and SARIF from both runs. This is the pipeline's
// core contract: worker count is a throughput knob, not a semantic one.
func TestFileWorkersDifferential(t *testing.T) {
	t.Parallel()
	_, c14 := corpus.MustGenerate()

	configs := []struct{ tool, packs string }{
		{"phpsafe", "wordpress"},
		{"phpsafe", "generic"},
		{"phpsafe", "wordpress,security-extended"},
		{"rips", "wordpress"},
		{"rips", "generic"},
		{"rips", "wordpress,security-extended"},
		{"pixy", "wordpress"}, // pixy ignores packs; included for the CLI surface
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.tool+"/"+cfg.packs, func(t *testing.T) {
			t.Parallel()
			serialEng, err := eval.BuildTool(cfg.tool, cfg.packs, eval.ToolOptions{})
			if err != nil {
				t.Fatal(err)
			}
			parallelEng, err := eval.BuildTool(cfg.tool, cfg.packs, eval.ToolOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, target := range c14.Targets {
				serialJSON, serialSARIF := renderScan(t, serialEng, target, 1)
				parallelJSON, parallelSARIF := renderScan(t, parallelEng, target, 8)
				if !bytes.Equal(serialJSON, parallelJSON) {
					t.Errorf("%s: JSON differs between FileWorkers=1 and FileWorkers=8\nserial:   %s\nparallel: %s",
						target.Name, serialJSON, parallelJSON)
				}
				if !bytes.Equal(serialSARIF, parallelSARIF) {
					t.Errorf("%s: SARIF differs between FileWorkers=1 and FileWorkers=8", target.Name)
				}
			}
		})
	}
}

// TestParallelFaultDeterminism injects crashes into two files of one
// plugin and re-runs the scan on a saturated pool twenty times per
// engine: the rendered JSON — including the ordering of FilesFailed,
// Errors and RobustnessFailures — must be identical on every run, no
// matter which workers hit the faults or in what order. Run under
// -race this also proves the per-file failure accumulation is
// race-clean.
func TestParallelFaultDeterminism(t *testing.T) {
	// Deliberately not parallel: the fault hook is a process-wide seam.
	// Both victims are procedural files every engine analyzes (Pixy
	// skips class-bearing files before the fault seam fires).
	victims := map[string]bool{"ajax.php": true, "templates/display.php": true}
	govern.FaultHookForTesting = func(file string) {
		if victims[file] {
			panic("injected parallel fault")
		}
	}
	defer func() { govern.FaultHookForTesting = nil }()

	_, c14 := corpus.MustGenerate()
	target := c14.Target("mail-subscribe-list")
	if target == nil {
		t.Fatal("plugin missing from corpus")
	}

	for _, eng := range eval.DefaultTools() {
		eng := eng
		t.Run(eng.Name(), func(t *testing.T) {
			var first []byte
			for run := 0; run < 20; run++ {
				res, err := eng.AnalyzeContext(context.Background(), target,
					&analyzer.ScanOptions{FileWorkers: 8})
				if err != nil {
					t.Fatalf("run %d: injected crash escalated to a scan error: %v", run, err)
				}
				if len(res.RobustnessFailures) != 2 {
					t.Fatalf("run %d: %d robustness failures, want 2 (%+v)",
						run, len(res.RobustnessFailures), res.RobustnessFailures)
				}
				got, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if first == nil {
					first = got
					continue
				}
				if !bytes.Equal(first, got) {
					t.Fatalf("run %d JSON differs from run 0\nrun 0: %s\nrun %d: %s",
						run, first, run, got)
				}
			}
		})
	}
}

// TestParallelCancellationBounded cancels a saturated-pool scan of a
// deliberately heavy target mid-pipeline and requires the same
// settlement contract the serial degradation ladder guarantees: a
// wrapped context.Canceled, a preserved partial result, and a bounded
// settle time — the pool must not strand workers past the checkpoint
// cadence.
func TestParallelCancellationBounded(t *testing.T) {
	t.Parallel()
	content, err := os.ReadFile(filepath.Join("internal", "govern", "testdata", "giant_inline_html.php"))
	if err != nil {
		t.Fatal(err)
	}

	for _, engName := range []string{"phpsafe", "rips", "pixy"} {
		engName := engName
		t.Run(engName, func(t *testing.T) {
			t.Parallel()
			eng, err := eval.BuildTool(engName, "wordpress", eval.ToolOptions{})
			if err != nil {
				t.Fatal(err)
			}
			// A fast machine can finish the whole scan before the cancel
			// lands, which proves nothing; grow the target until the
			// cancellation arrives mid-pipeline.
			for copies := 25; ; copies *= 4 {
				target := &analyzer.Target{Name: "parallel-cancel"}
				for i := 0; i < copies; i++ {
					target.Files = append(target.Files, analyzer.SourceFile{
						Path:    fmt.Sprintf("copy_%03d.php", i),
						Content: string(content),
					})
				}
				ctx, cancel := context.WithCancel(context.Background())

				type outcome struct {
					res     *analyzer.Result
					err     error
					settled time.Time
				}
				done := make(chan outcome, 1)
				go func() {
					res, err := eng.AnalyzeContext(ctx, target,
						&analyzer.ScanOptions{FileWorkers: 8})
					done <- outcome{res, err, time.Now()}
				}()

				time.Sleep(25 * time.Millisecond)
				cancelled := time.Now()
				cancel()

				select {
				case out := <-done:
					if out.err == nil && copies < 1600 {
						continue // the scan outran the cancel; heavier target
					}
					if !errors.Is(out.err, context.Canceled) {
						t.Fatalf("err = %v (copies=%d), want wrapped context.Canceled", out.err, copies)
					}
					if out.res == nil {
						t.Error("cancelled parallel scan dropped its partial result")
					}
					if lag := out.settled.Sub(cancelled); lag > 5*time.Second {
						t.Errorf("cancellation took %v to surface", lag)
					}
					return
				case <-time.After(30 * time.Second):
					t.Fatal("cancelled parallel scan never returned")
				}
			}
		})
	}
}
