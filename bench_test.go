package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (DSN 2015, §V), plus ablation benchmarks for the
// design decisions called out in DESIGN.md §4.
//
// Each table/figure benchmark regenerates the corresponding artifact: it
// runs the three analyzers over the generated corpus, prints the rendered
// table once per `go test -bench` invocation, and reports the headline
// numbers as benchmark metrics so regressions are visible in -benchmem
// output diffs.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/config"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/incremental"
	"repro/internal/pixy"
	"repro/internal/report"
	"repro/internal/rips"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

// corpora caches the generated corpus pair for all benchmarks.
var (
	corporaOnce sync.Once
	bench2012   *corpus.Corpus
	bench2014   *corpus.Corpus
)

// corpora returns the shared corpus snapshots.
func corpora() (*corpus.Corpus, *corpus.Corpus) {
	corporaOnce.Do(func() {
		bench2012, bench2014 = corpus.MustGenerate()
	})
	return bench2012, bench2014
}

// evalsOnce caches one full evaluation pair for the quality benchmarks.
var (
	evalsOnceGuard sync.Once
	benchEval2012  *eval.Evaluation
	benchEval2014  *eval.Evaluation
	evalsErr       error
)

// evaluations returns the shared evaluation pair.
func evaluations(b *testing.B) (*eval.Evaluation, *eval.Evaluation) {
	b.Helper()
	evalsOnceGuard.Do(func() {
		c12, c14 := corpora()
		benchEval2012, evalsErr = eval.EvaluateCorpusContext(context.Background(), c12, eval.EvalOptions{})
		if evalsErr != nil {
			return
		}
		benchEval2014, evalsErr = eval.EvaluateCorpusContext(context.Background(), c14, eval.EvalOptions{})
	})
	if evalsErr != nil {
		b.Fatal(evalsErr)
	}
	return benchEval2012, benchEval2014
}

// printOnce guards help each artifact print exactly once per invocation.
var (
	printTableI   sync.Once
	printFig2     sync.Once
	printTableII  sync.Once
	printInertia  sync.Once
	printTableIII sync.Once
)

// BenchmarkTableI regenerates Table I: per-tool, per-class TP/FP/
// precision/recall/F-score on both corpus versions. The benchmark loop
// measures a full three-tool evaluation of the 2012 corpus; the headline
// metrics are attached as custom benchmark units.
func BenchmarkTableI(b *testing.B) {
	e12, e14 := evaluations(b)
	printTableI.Do(func() {
		fmt.Println(report.TableI(e12, e14))
		fmt.Println(report.Summary(e12, e14))
	})
	php12 := e12.Tool("phpSAFE").Global
	rips12 := e12.Tool("RIPS").Global
	pixy12 := e12.Tool("Pixy").Global
	b.ReportMetric(float64(php12.TP), "phpSAFE-TP-2012")
	b.ReportMetric(float64(rips12.TP), "RIPS-TP-2012")
	b.ReportMetric(float64(pixy12.TP), "Pixy-TP-2012")
	b.ReportMetric(php12.Precision()*100, "phpSAFE-P%-2012")

	c12, _ := corpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.EvaluateCorpusContext(context.Background(), c12, eval.EvalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates Fig. 2: the detection-overlap Venn regions
// and the two-year growth in distinct vulnerabilities.
func BenchmarkFig2(b *testing.B) {
	e12, e14 := evaluations(b)
	printFig2.Do(func() {
		fmt.Println(report.Fig2(e12, e14))
	})
	ov12, ov14 := e12.ComputeOverlap(), e14.ComputeOverlap()
	b.ReportMetric(float64(ov12.Union), "distinct-2012")
	b.ReportMetric(float64(ov14.Union), "distinct-2014")
	b.ReportMetric(100*float64(ov14.Union-ov12.Union)/float64(ov12.Union), "growth-%")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e12.ComputeOverlap()
		e14.ComputeOverlap()
	}
}

// BenchmarkTableII regenerates Table II: the input-vector breakdown of
// the detected vulnerabilities plus the §V.C root-cause shares.
func BenchmarkTableII(b *testing.B) {
	e12, e14 := evaluations(b)
	printTableII.Do(func() {
		fmt.Println(report.TableII(e12, e14))
	})
	vb := e14.ComputeVectors()
	b.ReportMetric(float64(vb.Rows["DB"]), "DB-2014")
	b.ReportMetric(float64(vb.Rows["GET"]), "GET-2014")
	b.ReportMetric(vb.NumericShare*100, "numeric-%")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e12.ComputeVectors()
		e14.ComputeVectors()
	}
}

// BenchmarkInertia regenerates the §V.D analysis: the share of 2014
// vulnerabilities already disclosed in 2012 and how many are easy to
// exploit.
func BenchmarkInertia(b *testing.B) {
	_, e14 := evaluations(b)
	printInertia.Do(func() {
		fmt.Println(report.Inertia(e14))
	})
	in := e14.ComputeInertia()
	b.ReportMetric(in.PersistShare()*100, "persist-%")
	b.ReportMetric(in.EasyShare()*100, "easy-%")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e14.ComputeInertia()
	}
}

// BenchmarkTableIII regenerates Table III: per-tool wall-clock time over
// each corpus version. Each sub-benchmark is one tool on one corpus, so
// the -bench output itself is the table's data series; the rendered
// table (with s/KLOC normalization and the robustness accounting) prints
// once.
func BenchmarkTableIII(b *testing.B) {
	e12, e14 := evaluations(b)
	printTableIII.Do(func() {
		fmt.Println(report.TableIII(e12, e14))
	})

	c12, c14 := corpora()
	tools := []struct {
		name string
		mk   func() analyzer.Analyzer
	}{
		{"phpSAFE", func() analyzer.Analyzer {
			return taint.New(wordpress.Compiled(), taint.DefaultOptions())
		}},
		{"RIPS", func() analyzer.Analyzer { return rips.NewDefault() }},
		{"Pixy", func() analyzer.Analyzer { return pixy.New() }},
	}
	versions := []struct {
		name string
		c    *corpus.Corpus
	}{
		{"2012", c12},
		{"2014", c14},
	}
	for _, tool := range tools {
		for _, ver := range versions {
			b.Run(tool.name+"-"+ver.name, func(b *testing.B) {
				engine := tool.mk()
				kloc := float64(ver.c.Lines()) / 1000
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, target := range ver.c.Targets {
						if _, err := engine.AnalyzeContext(context.Background(), target, nil); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				secsPerOp := b.Elapsed().Seconds() / float64(b.N)
				b.ReportMetric(secsPerOp/kloc*1000, "ms/KLOC")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §4)
// ---------------------------------------------------------------------------

// ablationTP runs phpSAFE with modified options over the 2012 corpus and
// returns how many ground-truth vulnerabilities it detects.
func ablationTP(b *testing.B, opts taint.Options) int {
	b.Helper()
	c12, _ := corpora()
	engine := taint.New(wordpress.Compiled(), opts)
	run, err := eval.Run(context.Background(), engine, c12, eval.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ev := eval.Evaluate(c12, []*eval.ToolRun{run})
	return ev.Tools[0].Global.TP
}

// BenchmarkAblationSummaries compares function summaries (paper §II/§III.C)
// against whole-program re-analysis: summaries should be faster at equal
// detection quality.
func BenchmarkAblationSummaries(b *testing.B) {
	c12, _ := corpora()
	for _, mode := range []struct {
		name      string
		summaries bool
	}{
		{"summaries", true},
		{"whole-program", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := taint.DefaultOptions()
			opts.FunctionSummaries = mode.summaries
			engine := taint.New(wordpress.Compiled(), opts)
			b.ReportMetric(float64(ablationTP(b, opts)), "TP")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, target := range c12.Targets {
					if _, err := engine.AnalyzeContext(context.Background(), target, nil); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationOOP quantifies §III.E: disabling object-oriented
// analysis forfeits every WordPress-object vulnerability (the RIPS/Pixy
// blind spot).
func BenchmarkAblationOOP(b *testing.B) {
	for _, mode := range []struct {
		name string
		oop  bool
	}{
		{"oop-on", true},
		{"oop-off", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := taint.DefaultOptions()
			opts.OOP = mode.oop
			tp := ablationTP(b, opts)
			b.ReportMetric(float64(tp), "TP")
			for i := 0; i < b.N; i++ {
				_ = tp
			}
		})
	}
}

// BenchmarkAblationUncalled quantifies §III.B-C: skipping functions that
// are never called from plugin code loses the hook-callback attack
// surface.
func BenchmarkAblationUncalled(b *testing.B) {
	for _, mode := range []struct {
		name     string
		uncalled bool
	}{
		{"uncalled-analyzed", true},
		{"reachable-only", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := taint.DefaultOptions()
			opts.AnalyzeUncalled = mode.uncalled
			tp := ablationTP(b, opts)
			b.ReportMetric(float64(tp), "TP")
			for i := 0; i < b.N; i++ {
				_ = tp
			}
		})
	}
}

// BenchmarkAblationCMSProfile quantifies §III.A: running phpSAFE with
// only generic PHP knowledge (no WordPress profile) loses the framework
// sources and sanitizers.
func BenchmarkAblationCMSProfile(b *testing.B) {
	c12, _ := corpora()
	for _, mode := range []struct {
		name string
		mk   func() analyzer.Analyzer
	}{
		{"wordpress-profile", func() analyzer.Analyzer {
			return taint.New(wordpress.Compiled(), taint.DefaultOptions())
		}},
		{"generic-only", func() analyzer.Analyzer {
			return taint.New(configGenericCompiled(), taint.DefaultOptions())
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			engine := mode.mk()
			run, err := eval.Run(context.Background(), engine, c12, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			ev := eval.Evaluate(c12, []*eval.ToolRun{run})
			b.ReportMetric(float64(ev.Tools[0].Global.TP), "TP")
			b.ReportMetric(float64(ev.Tools[0].Global.FP), "FP")
			for i := 0; i < b.N; i++ {
				_ = ev
			}
		})
	}
}

// BenchmarkCorpusGeneration measures the deterministic corpus generator.
func BenchmarkCorpusGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := corpus.Generate(corpus.DefaultSpec()); err != nil {
			b.Fatal(err)
		}
	}
}

// configGenericCompiled builds the generic-PHP-only configuration for the
// CMS-profile ablation.
func configGenericCompiled() *config.Compiled {
	return config.Compile(config.Generic())
}

// BenchmarkIncrementalRescan measures the incremental subsystem's core
// promise: re-scanning a plugin after a one-file edit beats a cold scan
// because unchanged dependency components replay stored artifacts. The
// cold case analyzes every file from scratch; the warm case seeds an
// artifact store with the clean version once, then each iteration scans
// a freshly touched copy (fresh content hash every time, so exactly one
// file is re-analyzed per iteration).
func BenchmarkIncrementalRescan(b *testing.B) {
	const nfiles = 40
	base := incremental.SyntheticTarget(nfiles)

	newEngine := func(b *testing.B) *taint.Engine {
		b.Helper()
		tool, err := eval.BuildTool("phpsafe", "wordpress", eval.ToolOptions{})
		if err != nil {
			b.Fatal(err)
		}
		return tool.(*taint.Engine)
	}

	b.Run("cold", func(b *testing.B) {
		eng := newEngine(b)
		for i := 0; i < b.N; i++ {
			dirty := incremental.Touch(base, 0, i)
			if _, err := eng.Analyze(dirty); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-1-dirty", func(b *testing.B) {
		eng := newEngine(b)
		store, err := incremental.NewStore("", nil)
		if err != nil {
			b.Fatal(err)
		}
		inc := incremental.New(eng, store, "bench", nil)
		if _, err := inc.Analyze(base); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dirty := incremental.Touch(base, 0, i)
			res, rep, err := inc.AnalyzeWithReport(dirty)
			if err != nil {
				b.Fatal(err)
			}
			if rep.ReusedFiles != nfiles-1 {
				b.Fatalf("reused %d files, want %d", rep.ReusedFiles, nfiles-1)
			}
			if len(res.Findings) == 0 {
				b.Fatal("no findings")
			}
		}
	})
}
