package repro

// End-to-end integration tests across package boundaries: corpus →
// disk → loader → analyzers → evaluation, the same path the command-line
// tools take.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/evolution"
	"repro/internal/taint"
	"repro/internal/wordpress"
)

// writeTarget materializes one plugin to disk the way cmd/corpusgen does.
func writeTarget(t *testing.T, root string, target *analyzer.Target) string {
	t.Helper()
	dir := filepath.Join(root, target.Name)
	for _, f := range target.Files {
		path := filepath.Join(dir, filepath.FromSlash(f.Path))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(f.Content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestDiskRoundTrip verifies that a plugin written to disk and loaded
// back produces the identical analysis as the in-memory target.
func TestDiskRoundTrip(t *testing.T) {
	t.Parallel()
	_, c14 := corpus.MustGenerate()
	target := c14.Target("mail-subscribe-list")
	if target == nil {
		t.Fatal("plugin missing from corpus")
	}

	dir := writeTarget(t, t.TempDir(), target)
	loaded, err := analyzer.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Files) != len(target.Files) {
		t.Fatalf("loaded %d files, want %d", len(loaded.Files), len(target.Files))
	}

	engine := taint.New(wordpress.Compiled(), taint.DefaultOptions())
	memRes, err := engine.Analyze(target)
	if err != nil {
		t.Fatal(err)
	}
	diskRes, err := engine.Analyze(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(memRes.Findings) != len(diskRes.Findings) {
		t.Fatalf("in-memory %d findings, from disk %d",
			len(memRes.Findings), len(diskRes.Findings))
	}
	for i := range memRes.Findings {
		if memRes.Findings[i].Key() != diskRes.Findings[i].Key() {
			t.Fatalf("finding %d differs: %s vs %s",
				i, memRes.Findings[i].Key(), diskRes.Findings[i].Key())
		}
	}
}

// TestAllToolsOnDiskTarget runs all three analyzers over a disk-loaded
// plugin to exercise the CLI code path for each engine.
func TestAllToolsOnDiskTarget(t *testing.T) {
	t.Parallel()
	c12, _ := corpus.MustGenerate()
	target := c12.Target("qtranslate") // a procedural plugin all tools can parse
	if target == nil {
		t.Fatal("plugin missing from corpus")
	}
	dir := writeTarget(t, t.TempDir(), target)
	loaded, err := analyzer.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range eval.DefaultTools() {
		res, err := tool.AnalyzeContext(context.Background(), loaded, nil)
		if err != nil {
			t.Fatalf("%s: %v", tool.Name(), err)
		}
		if res.FilesAnalyzed == 0 {
			t.Errorf("%s analyzed no files", tool.Name())
		}
	}
}

// TestEvolutionPipelineOverCorpus runs the full §V.D pipeline: analyze
// both corpus versions of every plugin and aggregate the evolution
// reports; the corpus-wide persisting share must land near the paper's
// 42%.
func TestEvolutionPipelineOverCorpus(t *testing.T) {
	t.Parallel()
	c12, c14 := corpus.MustGenerate()
	engine := taint.New(wordpress.Compiled(), taint.DefaultOptions())

	persisting, newTotal := 0, 0
	for _, oldTarget := range c12.Targets {
		newTarget := c14.Target(oldTarget.Name)
		if newTarget == nil {
			t.Fatalf("plugin %s missing from 2014", oldTarget.Name)
		}
		oldRes, err := engine.Analyze(oldTarget)
		if err != nil {
			t.Fatal(err)
		}
		newRes, err := engine.Analyze(newTarget)
		if err != nil {
			t.Fatal(err)
		}
		rep := evolution.Compare(oldRes, newRes, "2012", "2014")
		persisting += rep.Count(evolution.Persisting)
		newTotal += rep.Count(evolution.Persisting) + rep.Count(evolution.Introduced)
	}
	share := float64(persisting) / float64(newTotal)
	if share < 0.25 || share > 0.60 {
		t.Errorf("corpus-wide persisting share = %.2f, want near 0.42", share)
	}
}

// TestDeterministicEvaluation verifies the whole pipeline is reproducible:
// two independent corpus generations and evaluations agree exactly.
func TestDeterministicEvaluation(t *testing.T) {
	t.Parallel()
	run := func() (int, int) {
		c12, _, err := corpus.Generate(corpus.DefaultSpec())
		if err != nil {
			t.Fatal(err)
		}
		ev, err := eval.EvaluateCorpusContext(context.Background(), c12, eval.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Tool("phpSAFE").Global.TP, ev.Tool("phpSAFE").Global.FP
	}
	tp1, fp1 := run()
	tp2, fp2 := run()
	if tp1 != tp2 || fp1 != fp2 {
		t.Fatalf("non-deterministic evaluation: (%d,%d) vs (%d,%d)", tp1, fp1, tp2, fp2)
	}
}

// TestAlternateSeedStillHoldsShape verifies the headline result is not an
// artifact of the default seed: with a different seed the ranking and
// the OOP monopoly must still hold.
func TestAlternateSeedStillHoldsShape(t *testing.T) {
	t.Parallel()
	spec := corpus.DefaultSpec()
	spec.Seed = 7
	c12, _, err := corpus.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eval.EvaluateCorpusContext(context.Background(), c12, eval.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	php := ev.Tool("phpSAFE").Global
	rips := ev.Tool("RIPS").Global
	pixy := ev.Tool("Pixy").Global
	if !(php.TP > rips.TP && rips.TP > pixy.TP) {
		t.Errorf("seed 7: TP ranking broken: %d %d %d", php.TP, rips.TP, pixy.TP)
	}
	if !(php.Precision() > rips.Precision() && rips.Precision() > pixy.Precision()) {
		t.Errorf("seed 7: precision ranking broken: %.2f %.2f %.2f",
			php.Precision(), rips.Precision(), pixy.Precision())
	}
}
