package repro

// Crash-recovery integration test: boot the real phpsafed binary with
// a journal, SIGKILL it with scans accepted (some finished, some not),
// restart it on the same journal directory, and require every accepted
// scan to reach a settled state — with pre-crash results replayed
// byte-identically.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer guards the daemon's combined output: exec copies into it
// from a pipe goroutine while the test reads it for diagnostics.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// crashScanView is the subset of the daemon's scan envelope this test
// asserts on. Result stays raw so byte-identity is compared on the
// exact wire bytes, not a re-marshalled struct.
type crashScanView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
}

func TestCrashRecoveryAcrossSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	bins := binaries(t)
	journal := t.TempDir()

	// Reserve a port; the listener is closed right before the daemon
	// takes it over.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	base := "http://" + addr

	var logs syncBuffer
	start := func() *exec.Cmd {
		cmd := exec.Command(filepath.Join(bins, "phpsafed"),
			"-addr", addr, "-workers", "1", "-queue", "32",
			"-journal", journal,
			"-max-attempts", "2", "-retry-base", "10ms", "-retry-cap", "50ms")
		cmd.Stdout = &logs
		cmd.Stderr = &logs
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting phpsafed: %v", err)
		}
		return cmd
	}
	waitHealthy := func() {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("daemon never became healthy; logs:\n%s", logs.String())
	}
	submit := func(name string) string {
		t.Helper()
		body, _ := json.Marshal(map[string]any{
			"name": name,
			"files": map[string]string{
				// Distinct content per name so every submission is a
				// distinct cache key (and a distinct queued job).
				name + ".php": "<?php // " + name + "\necho $_GET['q'];\n",
			},
		})
		resp, err := http.Post(base+"/v1/scans", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("submitting %s: %v", name, err)
		}
		defer resp.Body.Close()
		var sc crashScanView
		if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
			t.Fatalf("decoding %s submission: %v", name, err)
		}
		if sc.ID == "" {
			t.Fatalf("submission %s returned no id (HTTP %d)", name, resp.StatusCode)
		}
		return sc.ID
	}
	get := func(id string) (crashScanView, int) {
		t.Helper()
		resp, err := http.Get(base + "/v1/scans/" + id)
		if err != nil {
			t.Fatalf("getting scan %s: %v", id, err)
		}
		defer resp.Body.Close()
		var sc crashScanView
		if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
			t.Fatalf("decoding scan %s: %v", id, err)
		}
		return sc, resp.StatusCode
	}
	settled := func(status string) bool {
		switch status {
		case "done", "failed", "cancelled", "quarantined":
			return true
		}
		return false
	}
	waitSettled := func(id string) crashScanView {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			sc, code := get(id)
			if code == http.StatusOK && settled(sc.Status) {
				return sc
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("scan %s never settled; logs:\n%s", id, logs.String())
		return crashScanView{}
	}

	daemon := start()
	killed := false
	defer func() {
		if !killed {
			daemon.Process.Kill()
			daemon.Wait()
		}
	}()
	waitHealthy()

	// One scan runs to completion before the crash: its result is the
	// byte-identity baseline.
	first := submit("precrash")
	pre := waitSettled(first)
	if pre.Status != "done" || len(pre.Result) == 0 {
		t.Fatalf("pre-crash scan = %+v, want done with result", pre)
	}

	// More scans go in and the daemon dies hard — no drain, no journal
	// close — with work still queued behind the single worker.
	ids := []string{first}
	for i := 0; i < 4; i++ {
		ids = append(ids, submit(fmt.Sprintf("inflight%d", i)))
	}
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("killing daemon: %v", err)
	}
	daemon.Wait()
	killed = true

	// Restart on the same journal: every accepted scan must reach a
	// settled state, and nothing the client was promised may be lost.
	daemon2 := start()
	defer func() {
		daemon2.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { daemon2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			daemon2.Process.Kill()
			daemon2.Wait()
		}
	}()
	waitHealthy()

	for _, id := range ids {
		sc := waitSettled(id)
		// The fixture is well-formed PHP: every recovered scan should
		// complete, not just settle.
		if sc.Status != "done" {
			t.Errorf("scan %s after restart = %s (%s), want done", id, sc.Status, sc.Error)
		}
	}

	// The pre-crash result was rehydrated from the journal, not
	// recomputed: its wire bytes are identical.
	post, code := get(first)
	if code != http.StatusOK {
		t.Fatalf("GET pre-crash scan after restart = %d", code)
	}
	if !bytes.Equal(pre.Result, post.Result) {
		t.Errorf("pre-crash result changed across restart:\npre:  %s\npost: %s", pre.Result, post.Result)
	}

	// The journal survives on disk for the next restart.
	if _, err := os.Stat(filepath.Join(journal, "wal.jsonl")); err != nil {
		t.Errorf("journal WAL missing after recovery: %v", err)
	}
	if !strings.Contains(logs.String(), "journal replay") {
		t.Errorf("restart logged no journal replay; logs:\n%s", logs.String())
	}
}
