// Command evalrepro regenerates the paper's evaluation (DSN 2015, §V) in
// one shot: it generates the two corpus snapshots, runs phpSAFE, RIPS and
// Pixy over both, and prints Table I, Fig. 2, Table II, the §V.D inertia
// analysis and Table III.
//
// Usage:
//
//	evalrepro                # everything
//	evalrepro -table 1       # Table I only
//	evalrepro -table venn    # Fig. 2 only
//	evalrepro -table 2       # Table II + §V.C root causes
//	evalrepro -table inertia # §V.D
//	evalrepro -table 3       # Table III + robustness
//	evalrepro -seed 7        # alternative corpus seed
//	evalrepro -parallel 8    # worker pool (detection identical; timings
//	                         # not comparable with the paper's Table III)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/report"
)

func main() {
	os.Exit(run())
}

// run executes the reproduction and returns the process exit code.
func run() int {
	table := flag.String("table", "all", "which artifact to print: 1, venn, 2, inertia, 3, all")
	seed := flag.Int64("seed", corpus.DefaultSpec().Seed, "corpus generation seed")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = serial; parallel wall-clock is not comparable for Table III)")
	summary := flag.String("summary", "", "also write machine-readable JSON summaries to <file>-2012.json and <file>-2014.json")
	flag.Parse()

	spec := corpus.DefaultSpec()
	spec.Seed = *seed

	fmt.Fprintf(os.Stderr, "generating corpus (seed %d)...\n", spec.Seed)
	c12, c14, err := corpus.Generate(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "2012: %d plugins, %d files, %d lines, %d seeded vulnerabilities\n",
		len(c12.Targets), c12.Files(), c12.Lines(), len(c12.Truths))
	fmt.Fprintf(os.Stderr, "2014: %d plugins, %d files, %d lines, %d seeded vulnerabilities\n",
		len(c14.Targets), c14.Files(), c14.Lines(), len(c14.Truths))

	fmt.Fprintln(os.Stderr, "running phpSAFE, RIPS and Pixy on both versions...")
	evaluate := eval.EvaluateCorpus
	if *parallel > 0 {
		workers := *parallel
		evaluate = func(c *corpus.Corpus) (*eval.Evaluation, error) {
			return eval.EvaluateCorpusParallel(c, workers)
		}
	}
	ev12, err := evaluate(c12)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
		return 1
	}
	ev14, err := evaluate(c14)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
		return 1
	}

	if *summary != "" {
		for _, pair := range []struct {
			ev  *eval.Evaluation
			tag string
		}{{ev12, "2012"}, {ev14, "2014"}} {
			data, err := pair.ev.MarshalSummary()
			if err != nil {
				fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
				return 1
			}
			path := *summary + "-" + pair.tag + ".json"
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	show := func(name string) bool { return *table == "all" || *table == name }
	if show("1") {
		fmt.Println(report.TableI(ev12, ev14))
		fmt.Println(report.Summary(ev12, ev14))
	}
	if show("venn") {
		fmt.Println(report.Fig2(ev12, ev14))
	}
	if show("2") {
		fmt.Println(report.TableII(ev12, ev14))
		fmt.Println()
	}
	if show("inertia") {
		fmt.Println(report.Inertia(ev14))
		fmt.Println()
	}
	if show("3") {
		fmt.Println(report.TableIII(ev12, ev14))
	}
	return 0
}
