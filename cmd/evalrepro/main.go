// Command evalrepro regenerates the paper's evaluation (DSN 2015, §V) in
// one shot: it generates the two corpus snapshots, runs phpSAFE, RIPS and
// Pixy over both, and prints Table I, Fig. 2, Table II, the §V.D inertia
// analysis and Table III — plus a per-stage timing table (lex → parse →
// model → taint) from the observability layer, which the paper's single
// wall-clock Duration cannot show.
//
// Usage:
//
//	evalrepro                # everything
//	evalrepro -table 1       # Table I only
//	evalrepro -table venn    # Fig. 2 only
//	evalrepro -table 2       # Table II + §V.C root causes
//	evalrepro -table inertia # §V.D
//	evalrepro -table 3       # Table III + robustness
//	evalrepro -table stages  # per-stage timing breakdown only
//	evalrepro -table classes # per-class precision/recall (CWE, severity)
//	                         # over the extended corpus; -packs selects
//	                         # the rule packs (not part of "all")
//	evalrepro -seed 7        # alternative corpus seed
//	evalrepro -parallel 8    # worker pool (detection identical; timings
//	                         # not comparable with the paper's Table III)
//	evalrepro -progress      # per-plugin progress lines on stderr
//	evalrepro -bench F.json  # per-tool per-stage timing artifact
//	                         # (default BENCH_eval.json, "" disables)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/analyzer"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/taint"
)

func main() {
	os.Exit(run())
}

// run executes the reproduction and returns the process exit code.
func run() int {
	table := flag.String("table", "all", "which artifact to print: 1, venn, 2, inertia, 3, stages, classes, all")
	seed := flag.Int64("seed", corpus.DefaultSpec().Seed, "corpus generation seed")
	packs := flag.String("packs", "wordpress,security-extended", "rule packs for -table classes")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = serial; parallel wall-clock is not comparable for Table III)")
	summary := flag.String("summary", "", "also write machine-readable JSON summaries to <file>-2012.json and <file>-2014.json")
	bench := flag.String("bench", "BENCH_eval.json", "write per-tool per-stage timings to this file (\"\" disables)")
	fileWorkers := flag.Int("file-workers", 0, "per-scan file worker pool (0 = all cores, 1 = serial)")
	progress := flag.Bool("progress", false, "print per-plugin progress lines to stderr")
	flag.Parse()

	spec := corpus.DefaultSpec()
	spec.Seed = *seed

	// SIGINT aborts the sweep through the context-first analyzer API:
	// the running engine stops at its next governor checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *table == "classes" {
		return runClassTable(ctx, spec, *packs)
	}

	fmt.Fprintf(os.Stderr, "generating corpus (seed %d)...\n", spec.Seed)
	c12, c14, err := corpus.Generate(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "2012: %d plugins, %d files, %d lines, %d seeded vulnerabilities\n",
		len(c12.Targets), c12.Files(), c12.Lines(), len(c12.Truths))
	fmt.Fprintf(os.Stderr, "2014: %d plugins, %d files, %d lines, %d seeded vulnerabilities\n",
		len(c14.Targets), c14.Files(), c14.Lines(), len(c14.Truths))

	fmt.Fprintln(os.Stderr, "running phpSAFE, RIPS and Pixy on both versions...")

	// One recorder per (corpus, tool) keeps per-tool stage timings
	// separable for the stages table and the bench artifact.
	recorders := map[string]map[string]*obs.Recorder{"2012": {}, "2014": {}}
	evaluate := func(tag string, c *corpus.Corpus) (*eval.Evaluation, error) {
		opts := eval.EvalOptions{
			Workers: *parallel,
			RecorderFor: func(tool string) *obs.Recorder {
				rec := obs.NewRecorder()
				recorders[tag][tool] = rec
				return rec
			},
		}
		if *fileWorkers != 0 {
			opts.Budgets = &analyzer.ScanOptions{FileWorkers: *fileWorkers}
		}
		if *progress {
			opts.Progress = func(ev eval.Progress) {
				status := ""
				if ev.Err != nil {
					status = "  ERROR: " + ev.Err.Error()
				}
				fmt.Fprintf(os.Stderr, "  [%s/%s] %3d/%3d %s%s\n",
					tag, ev.Tool, ev.Done, ev.Total, ev.Plugin, status)
			}
		}
		return eval.EvaluateCorpusContext(ctx, c, opts)
	}
	ev12, err := evaluate("2012", c12)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
		return 1
	}
	ev14, err := evaluate("2014", c14)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
		return 1
	}

	if *summary != "" {
		for _, pair := range []struct {
			ev  *eval.Evaluation
			tag string
		}{{ev12, "2012"}, {ev14, "2014"}} {
			data, err := pair.ev.MarshalSummary()
			if err != nil {
				fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
				return 1
			}
			path := *summary + "-" + pair.tag + ".json"
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	if *bench != "" {
		inc, err := measureIncremental()
		if err != nil {
			fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
			return 1
		}
		fw, err := measureFileWorkers(ctx, c14)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
			return 1
		}
		if err := writeBench(*bench, *seed, *parallel, recorders, inc, fw, ev12, ev14); err != nil {
			fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *bench)
	}

	show := func(name string) bool { return *table == "all" || *table == name }
	if show("1") {
		fmt.Println(report.TableI(ev12, ev14))
		fmt.Println(report.Summary(ev12, ev14))
	}
	if show("venn") {
		fmt.Println(report.Fig2(ev12, ev14))
	}
	if show("2") {
		fmt.Println(report.TableII(ev12, ev14))
		fmt.Println()
	}
	if show("inertia") {
		fmt.Println(report.Inertia(ev14))
		fmt.Println()
	}
	if show("3") {
		fmt.Println(report.TableIII(ev12, ev14))
	}
	if show("stages") {
		fmt.Println(stageTable(recorders))
	}
	return 0
}

// runClassTable prints the per-class precision/recall breakdown (with
// CWE and severity metadata) over the extended corpus: the default
// population plus the command-injection, code-evaluation, traversal,
// inclusion and redirect seeds the selected rule packs can detect.
func runClassTable(ctx context.Context, spec corpus.Spec, packs string) int {
	spec.ExtendedClasses = true
	fmt.Fprintf(os.Stderr, "generating extended corpus (seed %d)...\n", spec.Seed)
	c12, c14, err := corpus.Generate(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
		return 1
	}
	tool, err := eval.BuildTool("phpsafe", packs, eval.ToolOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
		return 1
	}
	for _, snap := range []struct {
		tag string
		c   *corpus.Corpus
	}{{"2012", c12}, {"2014", c14}} {
		run, err := eval.Run(ctx, tool, snap.c, eval.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
			return 1
		}
		rows := eval.ClassBreakdown(snap.c, run)
		fmt.Println(eval.ClassTable(
			fmt.Sprintf("%s, %s corpus, packs %s", run.Tool, snap.tag, packs), rows))
	}
	return 0
}

// stageOrder lists the pipeline stages in execution order; "plugin" is
// the harness's whole-plugin wall clock.
var stageOrder = []string{"lex", "parse", "model", "taint", "plugin"}

// stageHistogram maps a stage name to its histogram in the registry.
func stageHistogram(stage string) string {
	if stage == "plugin" {
		return "eval_plugin_seconds"
	}
	return "stage_" + stage + "_seconds"
}

// stageTable renders the per-stage timing breakdown for both corpora —
// the instrumentation-era companion to the paper's Table III. Stage
// sums overlap by construction (lex ⊂ parse ⊂ model ⊂ plugin): each row
// is the total time attributed to that stage, not an exclusive share.
func stageTable(recorders map[string]map[string]*obs.Recorder) string {
	var sb strings.Builder
	sb.WriteString("Per-stage analysis time (from the observability layer; seconds summed over the corpus)\n")
	sb.WriteString("lex is included in parse, parse in model, and every stage in plugin\n")
	for _, tag := range []string{"2012", "2014"} {
		tools := make([]string, 0, len(recorders[tag]))
		for tool := range recorders[tag] {
			tools = append(tools, tool)
		}
		sort.Strings(tools)
		sb.WriteString(fmt.Sprintf("\n%s corpus\n", tag))
		sb.WriteString(fmt.Sprintf("  %-8s", "stage"))
		for _, tool := range tools {
			sb.WriteString(fmt.Sprintf(" %12s", tool))
		}
		sb.WriteByte('\n')
		for _, stage := range stageOrder {
			sb.WriteString(fmt.Sprintf("  %-8s", stage))
			for _, tool := range tools {
				h := recorders[tag][tool].Histogram(stageHistogram(stage))
				sb.WriteString(fmt.Sprintf(" %12.3f", h.Sum()))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// benchStage is one stage's timing aggregate in the bench artifact.
type benchStage struct {
	// SumSeconds is the stage's total time over the whole corpus.
	SumSeconds float64 `json:"sum_seconds"`
	// Count is the number of stage executions (files for lex/parse,
	// plugins for model/taint/plugin).
	Count int64 `json:"count"`
}

// benchTool is one tool's timing entry in the bench artifact.
type benchTool struct {
	// WallClockMS is the tool's whole-corpus duration (the Table III
	// figure).
	WallClockMS float64 `json:"wall_clock_ms"`
	// Stages maps stage name to its aggregate.
	Stages map[string]benchStage `json:"stages"`
	// Counters carries every counter the tool's recorder accumulated
	// (tokens lexed, AST nodes, functions analyzed, ...).
	Counters map[string]int64 `json:"counters"`
}

// benchIncremental records the incremental-rescan comparison: a cold
// scan of an N-file plugin against a warm re-scan after a one-file edit
// (artifacts from the previous version reused for the other N-1 files).
type benchIncremental struct {
	Files       int     `json:"files"`
	ColdMS      float64 `json:"cold_ms"`
	WarmMS      float64 `json:"warm_ms"`
	Speedup     float64 `json:"speedup"`
	ReusedFiles int     `json:"reused_files"`
}

// measureIncremental runs the cold-vs-warm rescan comparison on the
// synthetic incremental fixture (the BenchmarkIncrementalRescan shape,
// medianless: best of three to damp scheduler noise).
func measureIncremental() (*benchIncremental, error) {
	const nfiles, rounds = 40, 3
	base := incremental.SyntheticTarget(nfiles)
	tool, err := eval.BuildTool("phpsafe", "wordpress", eval.ToolOptions{})
	if err != nil {
		return nil, err
	}
	eng := tool.(*taint.Engine)
	store, err := incremental.NewStore("", nil)
	if err != nil {
		return nil, err
	}
	inc := incremental.New(eng, store, "bench", nil)
	if _, err := inc.Analyze(base); err != nil {
		return nil, err
	}

	out := &benchIncremental{Files: nfiles}
	for i := 0; i < rounds; i++ {
		dirty := incremental.Touch(base, 0, i)

		start := time.Now()
		if _, err := eng.Analyze(dirty); err != nil {
			return nil, err
		}
		cold := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		_, rep, err := inc.AnalyzeWithReport(dirty)
		if err != nil {
			return nil, err
		}
		warm := float64(time.Since(start).Microseconds()) / 1000

		if i == 0 || cold < out.ColdMS {
			out.ColdMS = cold
		}
		if i == 0 || warm < out.WarmMS {
			out.WarmMS = warm
		}
		out.ReusedFiles = rep.ReusedFiles
	}
	if out.WarmMS > 0 {
		out.Speedup = out.ColdMS / out.WarmMS
	}
	return out, nil
}

// benchFileWorkers is the intra-scan parallel pipeline's cold-scan
// comparison: the same full-corpus phpSAFE sweep at FileWorkers=1 vs
// FileWorkers=GOMAXPROCS. Output is byte-identical either way; only
// the wall clock moves, and only as far as the host's cores allow.
type benchFileWorkers struct {
	// Workers is GOMAXPROCS on the measuring host — the parallel run's
	// pool size and the ceiling on any speedup.
	Workers    int     `json:"workers"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// measureFileWorkers times the serial-vs-parallel cold sweep (best of
// three rounds each, same corpus, same engine).
func measureFileWorkers(ctx context.Context, c *corpus.Corpus) (*benchFileWorkers, error) {
	tool, err := eval.BuildTool("phpsafe", "wordpress", eval.ToolOptions{})
	if err != nil {
		return nil, err
	}
	out := &benchFileWorkers{Workers: runtime.GOMAXPROCS(0)}
	const rounds = 3
	for i := 0; i < rounds; i++ {
		for _, mode := range []struct {
			workers int
			ms      *float64
		}{{1, &out.SerialMS}, {out.Workers, &out.ParallelMS}} {
			start := time.Now()
			if _, err := eval.Run(ctx, tool, c, eval.Options{
				Budgets: &analyzer.ScanOptions{FileWorkers: mode.workers},
			}); err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			if i == 0 || ms < *mode.ms {
				*mode.ms = ms
			}
		}
	}
	if out.ParallelMS > 0 {
		out.Speedup = out.SerialMS / out.ParallelMS
	}
	return out, nil
}

// benchDoc is the BENCH_eval.json schema: a perf trajectory point for
// future PRs to compare against.
type benchDoc struct {
	Seed              int64                           `json:"seed"`
	Parallel          int                             `json:"parallel"`
	IncrementalRescan *benchIncremental               `json:"incremental_rescan,omitempty"`
	FileWorkers       *benchFileWorkers               `json:"file_workers,omitempty"`
	Corpora           map[string]map[string]benchTool `json:"corpora"`
}

// writeBench renders the per-tool, per-stage timing artifact.
func writeBench(path string, seed int64, parallel int,
	recorders map[string]map[string]*obs.Recorder, inc *benchIncremental,
	fw *benchFileWorkers, evs ...*eval.Evaluation) error {

	doc := benchDoc{Seed: seed, Parallel: parallel, IncrementalRescan: inc,
		FileWorkers: fw, Corpora: map[string]map[string]benchTool{}}
	for i, tag := range []string{"2012", "2014"} {
		doc.Corpora[tag] = map[string]benchTool{}
		for tool, rec := range recorders[tag] {
			snap := rec.Snapshot()
			bt := benchTool{
				Stages:   map[string]benchStage{},
				Counters: snap.Counters,
			}
			if tm := evs[i].Tool(tool); tm != nil {
				bt.WallClockMS = float64(tm.Duration.Microseconds()) / 1000
			}
			for _, stage := range stageOrder {
				if hs, ok := snap.Histograms[stageHistogram(stage)]; ok {
					bt.Stages[stage] = benchStage{SumSeconds: hs.Sum, Count: hs.Count}
				}
			}
			doc.Corpora[tag][tool] = bt
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
