// Command phpsafe scans a PHP plugin directory for XSS and SQL-Injection
// vulnerabilities — the command-line equivalent of the phpSAFE web
// interface described in the paper (DSN 2015, §III).
//
// Usage:
//
//	phpsafe [flags] <plugin-dir|file.php>
//	phpsafe -diff [flags] <old-dir> <new-dir>
//	phpsafe rules lint [FILE...]
//
//	-profile wordpress|generic   configuration profile (default wordpress)
//	-packs LIST                  comma-separated rule packs to scan with,
//	                             overriding -profile (builtin packs:
//	                             generic, wordpress, drupal, joomla,
//	                             security-extended)
//	-rule-pack FILE              load a custom rule pack from a JSON file
//	                             and append it to the pack spec
//	                             (repeatable)
//	-tool phpsafe|rips|pixy      analysis engine (default phpsafe)
//	-no-oop                      disable object-oriented analysis (§III.E)
//	-no-uncalled                 skip functions never called by the plugin
//	-trace                       print full data-flow traces (§III.D)
//	-json                        machine-readable findings output
//	-html FILE                   also write an HTML report (the paper's
//	                             web-page output, §III)
//	-sarif FILE                  also write a SARIF 2.1.0 report for CI
//	-model                       print the model inventory instead of
//	                             scanning: functions (with the uncalled
//	                             ones marked), classes, include edges
//	-inc-cache DIR               incremental analysis: reuse per-file
//	                             artifacts from DIR when neither the file
//	                             nor anything in its dependency component
//	                             changed; prints the reuse ratio to stderr
//	                             (phpsafe engine only)
//	-diff                        compare two versions of a plugin: scan
//	                             both directories and classify every
//	                             vulnerability as fixed, persisting or
//	                             introduced (§V.D)
//	-metrics FILE                write scan metrics (counters, stage
//	                             histograms, span tree) after the scan;
//	                             "-" writes to stdout
//	-metrics-format json|prom    metrics exposition format (default json)
//	-pprof ADDR                  serve net/http/pprof and expvar on ADDR
//	                             (e.g. localhost:6060) for long scans
//	-deadline D                  wall-clock budget for the whole scan;
//	                             exceeding it truncates the scan (the
//	                             partial report is printed and labelled)
//	-max-depth N                 parser nesting budget per file; deeper
//	                             nesting degrades to a recorded parse
//	                             error (0 = default 512)
//	-max-steps N                 interpreter step budget for the whole
//	                             scan (0 = default 20M, -1 = unlimited)
//	-file-slice D                wall-clock budget per file; exceeding it
//	                             fails that file and the scan continues
//	-file-workers N              per-scan worker pool fanning per-file
//	                             lex/parse/analysis across cores
//	                             (0 = all cores, 1 = serial); output is
//	                             identical at any worker count
//	-version                     print the version and exit
//
// The "rules lint" subcommand validates rule-pack files (builtin packs
// when no files are given) and exits nonzero on the first invalid pack,
// so CI can gate custom packs before they reach a scanner.
//
// SIGINT cancels a running scan cleanly: the engine stops at its next
// checkpoint and whatever was analyzed so far is reported.
//
// Exit status is 0 when no vulnerabilities are found, 1 when findings
// exist, and 2 on usage or I/O errors.
package main

import (
	"context"
	"encoding/json"
	_ "expvar" // registers /debug/vars on the default mux
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/eval"
	"repro/internal/evolution"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rulepack"
	"repro/internal/taint"
	"repro/internal/version"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "rules" {
		os.Exit(runRules(os.Args[2:]))
	}
	os.Exit(run())
}

// run parses flags, loads the target and scans it.
func run() int {
	profile := flag.String("profile", "wordpress", "configuration profile: wordpress or generic")
	packSpec := flag.String("packs", "", "comma-separated rule packs to scan with (overrides -profile)")
	var packFiles stringList
	flag.Var(&packFiles, "rule-pack", "load a rule pack from this JSON file and append it to the pack spec (repeatable)")
	toolName := flag.String("tool", "phpsafe", "engine: phpsafe, rips or pixy")
	noOOP := flag.Bool("no-oop", false, "disable object-oriented analysis")
	noUncalled := flag.Bool("no-uncalled", false, "skip functions not called from plugin code")
	trace := flag.Bool("trace", false, "print full data-flow traces")
	jsonOut := flag.Bool("json", false, "print findings as JSON")
	htmlOut := flag.String("html", "", "also write an HTML report to this file")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 report to this file")
	model := flag.Bool("model", false, "print the model inventory instead of scanning")
	incCache := flag.String("inc-cache", "", "incremental analysis: artifact cache directory (phpsafe engine only)")
	diff := flag.Bool("diff", false, "compare two plugin versions: phpsafe -diff <old-dir> <new-dir>")
	metricsOut := flag.String("metrics", "", "write scan metrics to this file after the scan (\"-\" for stdout)")
	metricsFormat := flag.String("metrics-format", "json", "metrics exposition format: json or prom")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address during the scan")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the whole scan (0 = none)")
	maxDepth := flag.Int("max-depth", 0, "parser nesting budget per file (0 = default)")
	maxSteps := flag.Int64("max-steps", 0, "interpreter step budget for the scan (0 = default, -1 = unlimited)")
	fileSlice := flag.Duration("file-slice", 0, "wall-clock budget per file (0 = none)")
	fileWorkers := flag.Int("file-workers", 0, "per-scan worker pool for file lex/parse/analysis (0 = all cores, 1 = serial)")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return 0
	}

	wantArgs, usage := 1, "usage: phpsafe [flags] <plugin-dir|file.php>"
	if *diff {
		wantArgs, usage = 2, "usage: phpsafe -diff [flags] <old-dir> <new-dir>"
	}
	if flag.NArg() != wantArgs {
		fmt.Fprintln(os.Stderr, usage)
		flag.PrintDefaults()
		return 2
	}
	if *metricsFormat != "json" && *metricsFormat != "prom" {
		fmt.Fprintf(os.Stderr, "phpsafe: unknown -metrics-format %q (want json or prom)\n", *metricsFormat)
		return 2
	}

	if *pprofAddr != "" {
		// The profiling server runs for the scan's lifetime; pprof and
		// expvar handlers are registered by the blank imports.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "phpsafe: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof server on http://%s/debug/pprof\n", *pprofAddr)
	}

	// Instrumentation is enabled only when the metrics dump is
	// requested, so default scans keep the uninstrumented hot path.
	var rec *obs.Recorder
	if *metricsOut != "" {
		rec = obs.NewRecorder()
	}

	// The effective rule-pack spec: -packs overrides -profile, and every
	// -rule-pack file is loaded and appended on top of the spec.
	spec := *profile
	if *packSpec != "" {
		spec = *packSpec
	}
	var extra []*rulepack.Pack
	for _, path := range packFiles {
		p, err := rulepack.LoadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
			return 2
		}
		extra = append(extra, p)
		spec += "," + p.Name
	}

	tool, err := eval.BuildTool(*toolName, spec, eval.ToolOptions{
		NoOOP:      *noOOP,
		NoUncalled: *noUncalled,
		Recorder:   rec,
		ExtraPacks: extra,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
		return 2
	}

	// Scan budgets (nil = all defaults) and SIGINT-driven cancellation:
	// the engine observes both at its governor checkpoints.
	var opts *analyzer.ScanOptions
	if *deadline != 0 || *maxDepth != 0 || *maxSteps != 0 || *fileSlice != 0 || *fileWorkers != 0 {
		opts = &analyzer.ScanOptions{
			Deadline:      *deadline,
			MaxParseDepth: *maxDepth,
			MaxSteps:      *maxSteps,
			FileTimeSlice: *fileSlice,
			FileWorkers:   *fileWorkers,
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *diff {
		code := runDiff(ctx, tool, flag.Arg(0), flag.Arg(1), *jsonOut, opts)
		if *metricsOut != "" {
			if err := writeMetrics(*metricsOut, *metricsFormat, rec); err != nil {
				fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
				return 2
			}
		}
		return code
	}

	target, err := analyzer.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
		return 2
	}
	if len(target.Files) == 0 {
		fmt.Fprintln(os.Stderr, "phpsafe: no .php files found")
		return 2
	}

	if *model {
		return printModel(tool, target)
	}

	scanner := tool
	if *incCache != "" {
		engine, ok := tool.(*taint.Engine)
		if !ok {
			fmt.Fprintln(os.Stderr, "phpsafe: -inc-cache requires -tool phpsafe")
			return 2
		}
		store, err := incremental.NewStore(*incCache, rec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
			return 2
		}
		// The fingerprint pins tool version and pack spec; the planner
		// folds the engine's own option set (including the compiled
		// rule-set digest) in on top.
		scanner = &incReporting{inc: incremental.New(engine, store,
			version.String()+"|"+spec, rec)}
	}

	res, err := scanner.AnalyzeContext(ctx, target, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
		return 2
	}
	warnDegradations(res)

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, *metricsFormat, rec); err != nil {
			fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
			return 2
		}
	}

	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(report.HTML(res)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "wrote HTML report to %s\n", *htmlOut)
	}
	if *sarifOut != "" {
		data, err := report.SARIF(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*sarifOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "wrote SARIF report to %s\n", *sarifOut)
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
			return 2
		}
	case *trace:
		fmt.Print(report.Findings(res))
	default:
		fmt.Printf("%s: %d finding(s) in %s (%d files, %d lines)\n",
			res.Tool, len(res.Findings), res.Target, res.FilesAnalyzed, res.LinesAnalyzed)
		for _, f := range res.Findings {
			fmt.Println("  " + f.String())
		}
		for _, failed := range res.FilesFailed {
			fmt.Printf("  warning: could not analyze %s\n", failed)
		}
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// stringList collects a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// runRules handles the "rules" subcommand. "rules lint [FILE...]"
// validates the given pack files — plus the builtin packs when no files
// are given — and checks that every pack's extends chain resolves
// against the builtins and the other linted files. Exit status is 0
// when every pack is valid, 2 otherwise.
func runRules(args []string) int {
	if len(args) == 0 || args[0] != "lint" {
		fmt.Fprintln(os.Stderr, "usage: phpsafe rules lint [FILE...]")
		return 2
	}
	reg := rulepack.NewRegistry()
	failed := false
	var names []string
	if len(args) == 1 {
		// No files: lint the builtins themselves.
		for _, p := range rulepack.Builtins() {
			names = append(names, p.Name)
			fmt.Printf("ok  %-20s %3d rules (builtin)\n", p.Name, p.RuleCount())
		}
	}
	for _, path := range args[1:] {
		p, err := reg.RegisterFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", err)
			failed = true
			continue
		}
		names = append(names, p.Name)
		fmt.Printf("ok  %-20s %3d rules (%s)\n", p.Name, p.RuleCount(), path)
	}
	// Resolution catches dangling or cyclic extends chains that per-file
	// validation cannot see.
	for _, name := range names {
		if _, err := reg.Resolve(name); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", name, err)
			failed = true
		}
	}
	if failed {
		return 2
	}
	return 0
}

// warnDegradations narrates a labelled partial result on stderr so a
// truncated or crash-isolated scan is never mistaken for a clean one.
func warnDegradations(res *analyzer.Result) {
	if res.Truncated {
		fmt.Fprintf(os.Stderr, "phpsafe: warning: scan truncated by budget: %s (partial report)\n",
			strings.Join(res.TruncatedBy, ", "))
	}
	for _, rf := range res.RobustnessFailures {
		fmt.Fprintf(os.Stderr, "phpsafe: warning: analysis of %s crashed and was isolated: %s\n",
			rf.File, rf.Reason)
	}
}

// incReporting runs the incremental analyzer and narrates its reuse to
// stderr, keeping stdout free for findings.
type incReporting struct {
	inc *incremental.Analyzer
}

func (w *incReporting) Name() string { return w.inc.Name() }

func (w *incReporting) Analyze(target *analyzer.Target) (*analyzer.Result, error) {
	return w.AnalyzeContext(context.Background(), target, nil)
}

func (w *incReporting) AnalyzeContext(ctx context.Context, target *analyzer.Target, opts *analyzer.ScanOptions) (*analyzer.Result, error) {
	res, rep, err := w.inc.AnalyzeWithReportContext(ctx, target, opts)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr,
		"incremental: reused %d/%d files (%.0f%%), re-analyzed %d (%d invalidated by dependencies), ~%.2fs saved\n",
		rep.ReusedFiles, rep.TotalFiles, 100*rep.ReuseRatio,
		rep.AnalyzedFiles, rep.InvalidatedFiles, rep.TimeSavedSeconds)
	return res, nil
}

// runDiff scans two versions of a plugin and classifies every
// vulnerability as fixed, persisting or introduced (§V.D). Exit status
// follows the scan convention: 1 when the new version has findings
// (persisting or introduced), 0 when it is clean.
func runDiff(ctx context.Context, tool analyzer.Analyzer, oldDir, newDir string, jsonOut bool, opts *analyzer.ScanOptions) int {
	scan := func(dir string) (*analyzer.Result, int) {
		target, err := analyzer.Load(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
			return nil, 2
		}
		if len(target.Files) == 0 {
			fmt.Fprintf(os.Stderr, "phpsafe: no .php files found in %s\n", dir)
			return nil, 2
		}
		res, err := tool.AnalyzeContext(ctx, target, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
			return nil, 2
		}
		warnDegradations(res)
		return res, 0
	}
	oldRes, code := scan(oldDir)
	if code != 0 {
		return code
	}
	newRes, code := scan(newDir)
	if code != 0 {
		return code
	}

	rep := evolution.Compare(oldRes, newRes, oldDir, newDir)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diffJSON(rep)); err != nil {
			fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
			return 2
		}
	} else {
		fmt.Printf("%s: %s -> %s: %d fixed, %d persisting, %d introduced\n",
			rep.Plugin, oldDir, newDir,
			rep.Count(evolution.Fixed), rep.Count(evolution.Persisting),
			rep.Count(evolution.Introduced))
		for _, c := range rep.Changes {
			fmt.Printf("  %-10s %s\n", c.Status, c.Finding.String())
		}
	}
	if rep.Count(evolution.Persisting)+rep.Count(evolution.Introduced) > 0 {
		return 1
	}
	return 0
}

// diffJSON is the machine-readable shape of an evolution report.
func diffJSON(rep *evolution.Report) any {
	type change struct {
		Status  string           `json:"status"`
		Finding analyzer.Finding `json:"finding"`
	}
	changes := make([]change, 0, len(rep.Changes))
	for _, c := range rep.Changes {
		changes = append(changes, change{Status: c.Status.String(), Finding: c.Finding})
	}
	return struct {
		Plugin     string   `json:"plugin"`
		OldVersion string   `json:"old_version"`
		NewVersion string   `json:"new_version"`
		Fixed      int      `json:"fixed"`
		Persisting int      `json:"persisting"`
		Introduced int      `json:"introduced"`
		Changes    []change `json:"changes"`
	}{
		Plugin:     rep.Plugin,
		OldVersion: rep.OldVersion,
		NewVersion: rep.NewVersion,
		Fixed:      rep.Count(evolution.Fixed),
		Persisting: rep.Count(evolution.Persisting),
		Introduced: rep.Count(evolution.Introduced),
		Changes:    changes,
	}
}

// printModel prints the §III.D model inventory (phpSAFE engine only).
func printModel(tool analyzer.Analyzer, target *analyzer.Target) int {
	engine, ok := tool.(*taint.Engine)
	if !ok {
		fmt.Fprintln(os.Stderr, "phpsafe: -model requires -tool phpsafe")
		return 2
	}
	info, err := engine.Model(target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpsafe: %v\n", err)
		return 2
	}
	fmt.Printf("model of %s: %d functions, %d classes, %d include edges\n\n",
		target.Name, len(info.Functions), len(info.Classes), len(info.Includes))
	for _, f := range info.Functions {
		mark := " "
		if !f.Called {
			mark = "*" // analyzed by the uncalled pass (§III.B)
		}
		fmt.Printf("  func  %s %-32s %s:%d (%d params)\n", mark, f.Name, f.File, f.Line, f.Params)
	}
	for _, c := range info.Classes {
		parent := ""
		if c.Extends != "" {
			parent = " extends " + c.Extends
		}
		fmt.Printf("  class   %s%s  %s:%d (%d props)\n", c.Name, parent, c.File, c.Line, c.Props)
		for _, m := range c.Methods {
			mark := " "
			if !m.Called {
				mark = "*"
			}
			fmt.Printf("    method %s %-28s line %d\n", mark, m.Name, m.Line)
		}
	}
	for _, e := range info.Includes {
		fmt.Printf("  include %s -> %s\n", e.From, e.To)
	}
	for _, e := range info.ParseErrors {
		fmt.Printf("  parse-error %s\n", e)
	}
	fmt.Println("\n  * = not called from plugin code (hook surface, §III.B)")
	return 0
}

// writeMetrics dumps the recorder snapshot in the requested format.
func writeMetrics(path, format string, rec *obs.Recorder) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	snap := rec.Snapshot()
	var err error
	if format == "prom" {
		err = snap.WritePrometheus(out)
	} else {
		err = snap.WriteJSON(out)
	}
	if err == nil && path != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s metrics to %s\n", format, path)
	}
	return err
}
