// Command corpusgen materializes the synthetic plugin corpus to disk so
// it can be inspected or fed to external tools. It writes one directory
// per plugin per version, the WordPress API stub file, and a labels file
// with the ground truth (one line per seeded vulnerability or trap).
//
// Usage:
//
//	corpusgen [-seed N] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
)

func main() {
	os.Exit(run())
}

// run generates and writes both corpus versions.
func run() int {
	seed := flag.Int64("seed", corpus.DefaultSpec().Seed, "corpus generation seed")
	out := flag.String("out", "corpus-out", "output directory")
	flag.Parse()

	spec := corpus.DefaultSpec()
	spec.Seed = *seed
	c12, c14, err := corpus.Generate(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
		return 1
	}

	for _, c := range []*corpus.Corpus{c12, c14} {
		if err := c.WriteTo(*out); err != nil {
			fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s: %d plugins, %d files, %d lines, %d vulnerabilities, %d traps\n",
			filepath.Join(*out, string(c.Version)), len(c.Targets),
			c.Files(), c.Lines(), len(c.Truths), len(c.Traps))
	}
	return 0
}
