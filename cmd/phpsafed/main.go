// Command phpsafed runs the phpSAFE analysis pipeline as a long-lived
// HTTP service: a scan daemon with a bounded job queue, a worker pool
// and a content-addressed result cache. It is the serving counterpart
// of the one-shot phpsafe CLI — upload a plugin, poll the job, fetch
// the report in analyzer JSON, SARIF or HTML.
//
// Usage:
//
//	phpsafed [flags]
//
//	-addr ADDR          listen address (default :8477)
//	-role ROLE          process role: standalone (default; the full
//	                    single-process daemon, byte-identical to a
//	                    phpsafed without the flag), coordinator (owns
//	                    the client API and the journal, dispatches
//	                    scans to workers over a consistent-hash ring)
//	                    or worker (runs the analyzer stack behind
//	                    /internal/v1/scan for one coordinator)
//	-workers N|URLS     standalone/worker: scan worker goroutines
//	                    (default NumCPU); coordinator: comma-separated
//	                    worker base URLs (required), e.g.
//	                    http://10.0.0.2:8477,http://10.0.0.3:8477
//	-advertise URL      worker: base URL reported in heartbeats so the
//	                    coordinator's logs name this worker the way it
//	                    was configured (optional)
//	-heartbeat-interval D
//	                    coordinator: worker heartbeat probe cadence
//	                    (default 1s); dead workers are re-probed on the
//	                    jittered -retry-base/-retry-cap backoff curve
//	-queue N            queued-scan bound; beyond it submissions get
//	                    HTTP 429 (default 64)
//	-job-timeout D      per-scan context timeout (default 2m)
//	-cache-mb N         result-cache byte budget in MiB (default 256)
//	-max-upload-mb N    submission body limit in MiB (default 32)
//	-inc-cache DIR      persist the incremental artifact store to DIR so
//	                    per-file reuse survives restarts (the store is
//	                    always on, in memory, without the flag): when a
//	                    changed version of a previously scanned plugin
//	                    arrives, only the files whose dependency
//	                    component changed are re-analyzed
//	-scan-deadline D    cap on one scan's wall-clock budget; exceeding it
//	                    truncates the scan (0 = uncapped, the job
//	                    timeout still applies)
//	-max-parse-depth N  cap on parser nesting depth per file (0 = the
//	                    analyzer default)
//	-max-steps N        cap on interpreter steps per scan (0 = the
//	                    analyzer default)
//	-max-findings N     cap on findings per scan (0 = the analyzer
//	                    default)
//	-file-slice D       cap on wall-clock time per file; exceeding it
//	                    fails that file and the scan continues (0 = off)
//	-journal DIR        journal accepted scans to DIR so they survive a
//	                    crash: on restart the daemon replays the journal,
//	                    rehydrates finished results and resubmits
//	                    interrupted scans (off without the flag)
//	-max-attempts N     attempts per scan before it is quarantined
//	                    (default 3)
//	-retry-base D       backoff before a scan's second attempt; doubled
//	                    per further attempt with jitter (default 100ms)
//	-retry-cap D        upper bound on the backoff (default 5s)
//	-journal-sync N     fsync the journal every N appends (1 = every
//	                    append, the default; 0 keeps 1; -1 = never)
//	-log-format F       structured log encoding on stdout: text
//	                    (default) or json (one object per line)
//	-log-level L        minimum log severity: debug, info (default),
//	                    warn or error
//	-slow-scan D        log a scan's full flight-recorder timeline at
//	                    warn level when its end-to-end time reaches D
//	                    (default 30s; 0 = off)
//	-version            print the version and exit
//
// Every log line is structured (log/slog) and carries a component
// attribute; scan lifecycle lines carry scan_id, so the daemon's
// output is machine-parseable end to end. The flight recorder behind
// GET /v1/scans/{id}/trace and GET /debug/events records each scan's
// lifecycle timeline (queue wait, attempts, backoff, reuse,
// degradations, replay, settle).
//
// The four budget caps bound what POST /v1/scans requests may ask for:
// a request's deadline_ms, max_parse_depth, max_steps, max_findings
// and file_slice_ms fields can tighten a budget below the cap but
// never exceed it.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips to
// draining, the listener stops, accepted scans drain, the journal is
// compacted and closed, and only then does the process exit. A crash
// (SIGKILL, power loss) instead leaves the journal behind; the next
// start with the same -journal recovers every accepted scan.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/analyzer"
	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/incremental"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/scancache"
	"repro/internal/server"
	"repro/internal/version"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8477", "listen address")
	role := flag.String("role", "standalone", "process role: standalone, coordinator or worker")
	workersFlag := flag.String("workers", "0", "standalone/worker: scan worker goroutines (0 = NumCPU); coordinator: comma-separated worker base URLs")
	advertise := flag.String("advertise", "", "worker: base URL reported in heartbeats")
	heartbeatInterval := flag.Duration("heartbeat-interval", time.Second, "coordinator: worker heartbeat probe cadence")
	queue := flag.Int("queue", 64, "max queued scans before submissions get 429")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-scan context timeout")
	cacheMB := flag.Int64("cache-mb", 256, "result cache budget in MiB")
	maxUploadMB := flag.Int64("max-upload-mb", 32, "submission body limit in MiB")
	incCache := flag.String("inc-cache", "", "persist the incremental artifact store to this directory")
	scanDeadline := flag.Duration("scan-deadline", 0, "cap on one scan's wall-clock budget (0 = uncapped)")
	maxParseDepth := flag.Int("max-parse-depth", 0, "cap on parser nesting depth per file (0 = default)")
	maxSteps := flag.Int64("max-steps", 0, "cap on interpreter steps per scan (0 = default)")
	maxFindings := flag.Int("max-findings", 0, "cap on findings per scan (0 = default)")
	fileSlice := flag.Duration("file-slice", 0, "cap on wall-clock time per file (0 = off)")
	fileWorkers := flag.Int("file-workers", 0, "default per-scan worker pool for file lex/parse/analysis (0 = all cores, 1 = serial)")
	journalDir := flag.String("journal", "", "journal accepted scans to this directory (off when empty)")
	maxAttempts := flag.Int("max-attempts", jobs.DefaultMaxAttempts, "attempts per scan before quarantine")
	retryBase := flag.Duration("retry-base", jobs.DefaultRetryBase, "backoff before a scan's second attempt")
	retryCap := flag.Duration("retry-cap", jobs.DefaultRetryCap, "upper bound on the retry backoff")
	journalSync := flag.Int("journal-sync", 1, "fsync the journal every N appends (-1 = never)")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log severity: debug, info, warn or error")
	slowScan := flag.Duration("slow-scan", 30*time.Second, "log a scan's full timeline when it takes at least this long (0 = off)")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return 0
	}

	logger, err := obs.NewLogger(os.Stdout, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	dlog := logger.With("component", "phpsafed")

	// Resolve the role before building anything: it decides how
	// -workers parses and which layers this process runs.
	var fleetWorkers []string
	poolWorkers := 0
	switch *role {
	case "standalone", "worker":
		if n, perr := strconv.Atoi(*workersFlag); perr == nil && n >= 0 {
			poolWorkers = n
		} else {
			fmt.Fprintf(os.Stderr, "phpsafed: -role=%s needs -workers to be a worker count, got %q\n", *role, *workersFlag)
			return 2
		}
	case "coordinator":
		for _, u := range strings.Split(*workersFlag, ",") {
			if u = strings.TrimSpace(u); u != "" && u != "0" {
				fleetWorkers = append(fleetWorkers, strings.TrimRight(u, "/"))
			}
		}
		if len(fleetWorkers) == 0 {
			fmt.Fprintln(os.Stderr, "phpsafed: -role=coordinator needs -workers with at least one worker URL")
			return 2
		}
		// Coordinator pool slots hold network waits, not CPU: size by
		// fleet width so a small coordinator host can still keep every
		// worker's queue fed.
		poolWorkers = 4 * len(fleetWorkers)
	default:
		fmt.Fprintf(os.Stderr, "phpsafed: unknown -role %q (want standalone, coordinator or worker)\n", *role)
		return 2
	}
	if *role == "worker" && *journalDir != "" {
		// Acceptance durability lives on the coordinator; a worker
		// journal would resurrect scans nobody will poll.
		dlog.Warn("-journal is ignored for -role=worker; the coordinator owns the journal")
		*journalDir = ""
	}

	// A daemon is always instrumented: /metrics is part of the API.
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{
		Workers:    poolWorkers,
		QueueSize:  *queue,
		JobTimeout: *jobTimeout,
		Recorder:   rec,
		Logger:     logger,
	})
	cache := scancache.New(*cacheMB<<20, rec)
	incStore, err := incremental.NewStore(*incCache, rec)
	if err != nil {
		dlog.Error("incremental store failed to open", "error", err.Error())
		return 1
	}
	var journal *durable.Journal
	var replayRecords []durable.Record
	if *journalDir != "" {
		journal, replayRecords, err = durable.Open(*journalDir, durable.Options{
			SyncEvery: *journalSync,
			Recorder:  rec,
			Logger:    logger,
		})
		if err != nil {
			dlog.Error("journal failed to open", "dir", *journalDir, "error", err.Error())
			return 1
		}
		defer journal.Close()
	}
	retry := jobs.RetryPolicy{
		MaxAttempts: *maxAttempts,
		Base:        *retryBase,
		Cap:         *retryCap,
	}
	if *role == "worker" {
		// The coordinator owns the attempt budget; a worker retrying
		// internally would burn budget the coordinator cannot see.
		retry.MaxAttempts = 1
	}
	var fl *fleet.Fleet
	if *role == "coordinator" {
		fl = fleet.New(fleet.Config{
			Workers:           fleetWorkers,
			HeartbeatInterval: *heartbeatInterval,
			ReconnectBackoff:  jobs.RetryPolicy{Base: *retryBase, Cap: *retryCap},
			Recorder:          rec,
			Logger:            logger.With("component", "fleet"),
		})
	}
	srvCfg := server.Config{
		Pool:           pool,
		Cache:          cache,
		Recorder:       rec,
		MaxUploadBytes: *maxUploadMB << 20,
		IncStore:       incStore,
		Journal:        journal,
		Retry:          retry,
		Budgets: analyzer.ScanOptions{
			Deadline:      *scanDeadline,
			MaxParseDepth: *maxParseDepth,
			MaxSteps:      *maxSteps,
			MaxFindings:   *maxFindings,
			FileTimeSlice: *fileSlice,
			FileWorkers:   *fileWorkers,
		},
		Logger:            logger,
		SlowScanThreshold: *slowScan,
	}
	if fl != nil {
		srvCfg.Dispatch = fl.Dispatch
		srvCfg.FleetStatus = fl.Status
	}
	api := server.New(srvCfg)
	if journal != nil {
		resubmitted, rehydrated, quarantined := api.Replay(replayRecords)
		if resubmitted+rehydrated+quarantined > 0 {
			dlog.Info("journal replay finished",
				"resubmitted", resubmitted, "rehydrated", rehydrated, "quarantined", quarantined)
		}
	}

	var handler http.Handler = api
	if *role == "worker" {
		handler = fleet.NewWorkerHandler(api, pool, *advertise)
	}
	if fl != nil {
		fl.Start()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	dlog.Info("listening",
		"version", version.Version, "addr", *addr, "role", *role, "workers", pool.Workers(),
		"queue", *queue, "cache_mb", *cacheMB, "journal", *journalDir != "")

	select {
	case <-ctx.Done():
		dlog.Info("signal received, draining")
	case err := <-errCh:
		dlog.Error("listener failed", "error", err.Error())
		return 1
	}

	// Flip readiness off, stop intake, then let queued scans finish.
	api.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		dlog.Error("http shutdown failed", "error", err.Error())
	}
	if err := pool.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		dlog.Error("pool drain failed", "error", err.Error())
		return 1
	}
	if fl != nil {
		// After the pool drained no dispatches remain; stop probing.
		fl.Stop()
	}
	if journal != nil {
		// A clean exit leaves a compact journal: the next start replays
		// one snapshot instead of the whole WAL.
		api.CompactJournal()
	}
	dlog.Info("drained, bye")
	return 0
}
