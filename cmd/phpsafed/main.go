// Command phpsafed runs the phpSAFE analysis pipeline as a long-lived
// HTTP service: a scan daemon with a bounded job queue, a worker pool
// and a content-addressed result cache. It is the serving counterpart
// of the one-shot phpsafe CLI — upload a plugin, poll the job, fetch
// the report in analyzer JSON, SARIF or HTML.
//
// Usage:
//
//	phpsafed [flags]
//
//	-addr ADDR          listen address (default :8477)
//	-role ROLE          process role: standalone (default; the full
//	                    single-process daemon, byte-identical to a
//	                    phpsafed without the flag), coordinator (owns
//	                    the client API and the journal, dispatches
//	                    scans to workers over a consistent-hash ring)
//	                    or worker (runs the analyzer stack behind
//	                    /internal/v1/scan for one coordinator)
//	-pool-workers N     scan worker goroutines (default NumCPU;
//	                    coordinator default: sized by fleet width)
//	-fleet-workers URLS coordinator: comma-separated worker base URLs,
//	                    e.g. http://10.0.0.2:8477,http://10.0.0.3:8477.
//	                    Optional when workers auto-register with -join;
//	                    journaled members are merged in on restart
//	-workers N|URLS     deprecated alias: worker count for
//	                    standalone/worker roles, worker URLs for the
//	                    coordinator. Use -pool-workers / -fleet-workers
//	-join URL           worker: coordinator base URL to announce to
//	                    (retries with backoff, then re-announces
//	                    periodically); requires -advertise
//	-advertise URL      worker: base URL this worker serves on, reported
//	                    in heartbeats and announced via -join
//	-hedge-delay D      coordinator: duplicate a dispatch to the next
//	                    ring owner when the primary has not settled
//	                    after D; first result wins (0 = off)
//	-replicas N         coordinator: dispatch replication factor; 2
//	                    sends every scan to both first ring owners
//	                    immediately (default 1)
//	-heartbeat-interval D
//	                    coordinator: worker heartbeat probe cadence
//	                    (default 1s); dead workers are re-probed on the
//	                    jittered -retry-base/-retry-cap backoff curve
//	-revive-after K     coordinator: consecutive successful probes a
//	                    suspect/dead worker must answer before it
//	                    re-enters the ring (default 2; flap damping)
//	-queue N            queued-scan bound; beyond it submissions get
//	                    HTTP 429 (default 64)
//	-job-timeout D      per-scan context timeout (default 2m)
//	-cache-mb N         result-cache byte budget in MiB (default 256)
//	-max-upload-mb N    submission body limit in MiB (default 32)
//	-inc-cache DIR      persist the incremental artifact store to DIR so
//	                    per-file reuse survives restarts (the store is
//	                    always on, in memory, without the flag): when a
//	                    changed version of a previously scanned plugin
//	                    arrives, only the files whose dependency
//	                    component changed are re-analyzed
//	-scan-deadline D    cap on one scan's wall-clock budget; exceeding it
//	                    truncates the scan (0 = uncapped, the job
//	                    timeout still applies)
//	-max-parse-depth N  cap on parser nesting depth per file (0 = the
//	                    analyzer default)
//	-max-steps N        cap on interpreter steps per scan (0 = the
//	                    analyzer default)
//	-max-findings N     cap on findings per scan (0 = the analyzer
//	                    default)
//	-file-slice D       cap on wall-clock time per file; exceeding it
//	                    fails that file and the scan continues (0 = off)
//	-journal DIR        journal accepted scans to DIR so they survive a
//	                    crash: on restart the daemon replays the journal,
//	                    rehydrates finished results and resubmits
//	                    interrupted scans (off without the flag). For
//	                    -role=worker the directory holds the dispatch
//	                    journal instead: in-progress dispatches are
//	                    recorded so a restarted worker replays its own
//	                    unfinished attempts and a restarted coordinator
//	                    can adopt them
//	-max-attempts N     attempts per scan before it is quarantined
//	                    (default 3)
//	-retry-base D       backoff before a scan's second attempt; doubled
//	                    per further attempt with jitter (default 100ms)
//	-retry-cap D        upper bound on the backoff (default 5s)
//	-journal-sync N     fsync the journal every N appends (1 = every
//	                    append, the default; 0 keeps 1; -1 = never)
//	-log-format F       structured log encoding on stdout: text
//	                    (default) or json (one object per line)
//	-log-level L        minimum log severity: debug, info (default),
//	                    warn or error
//	-slow-scan D        log a scan's full flight-recorder timeline at
//	                    warn level when its end-to-end time reaches D
//	                    (default 30s; 0 = off)
//	-version            print the version and exit
//
// Every log line is structured (log/slog) and carries a component
// attribute; scan lifecycle lines carry scan_id, so the daemon's
// output is machine-parseable end to end. The flight recorder behind
// GET /v1/scans/{id}/trace and GET /debug/events records each scan's
// lifecycle timeline (queue wait, attempts, backoff, reuse,
// degradations, replay, settle).
//
// The four budget caps bound what POST /v1/scans requests may ask for:
// a request's deadline_ms, max_parse_depth, max_steps, max_findings
// and file_slice_ms fields can tighten a budget below the cap but
// never exceed it.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips to
// draining, the listener stops, accepted scans drain, the journal is
// compacted and closed, and only then does the process exit. A crash
// (SIGKILL, power loss) instead leaves the journal behind; the next
// start with the same -journal recovers every accepted scan.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/analyzer"
	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/incremental"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/scancache"
	"repro/internal/server"
	"repro/internal/version"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8477", "listen address")
	role := flag.String("role", "standalone", "process role: standalone, coordinator or worker")
	poolWorkersFlag := flag.Int("pool-workers", 0, "scan worker goroutines (0 = NumCPU; coordinator: sized by fleet width)")
	fleetWorkersFlag := flag.String("fleet-workers", "", "coordinator: comma-separated worker base URLs (optional with auto-registration)")
	workersFlag := flag.String("workers", "0", "deprecated alias: worker count (standalone/worker) or worker URLs (coordinator); use -pool-workers / -fleet-workers")
	joinURL := flag.String("join", "", "worker: coordinator base URL to announce to (requires -advertise)")
	advertise := flag.String("advertise", "", "worker: base URL this worker serves on, reported in heartbeats and announced via -join")
	hedgeDelay := flag.Duration("hedge-delay", 0, "coordinator: duplicate a dispatch to the next ring owner after this delay (0 = off)")
	replicas := flag.Int("replicas", 1, "coordinator: dispatch replication factor (2 = dispatch to two owners immediately)")
	heartbeatInterval := flag.Duration("heartbeat-interval", time.Second, "coordinator: worker heartbeat probe cadence")
	reviveAfter := flag.Int("revive-after", 2, "coordinator: consecutive successful probes before a suspect/dead worker revives")
	queue := flag.Int("queue", 64, "max queued scans before submissions get 429")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-scan context timeout")
	cacheMB := flag.Int64("cache-mb", 256, "result cache budget in MiB")
	maxUploadMB := flag.Int64("max-upload-mb", 32, "submission body limit in MiB")
	incCache := flag.String("inc-cache", "", "persist the incremental artifact store to this directory")
	scanDeadline := flag.Duration("scan-deadline", 0, "cap on one scan's wall-clock budget (0 = uncapped)")
	maxParseDepth := flag.Int("max-parse-depth", 0, "cap on parser nesting depth per file (0 = default)")
	maxSteps := flag.Int64("max-steps", 0, "cap on interpreter steps per scan (0 = default)")
	maxFindings := flag.Int("max-findings", 0, "cap on findings per scan (0 = default)")
	fileSlice := flag.Duration("file-slice", 0, "cap on wall-clock time per file (0 = off)")
	fileWorkers := flag.Int("file-workers", 0, "default per-scan worker pool for file lex/parse/analysis (0 = all cores, 1 = serial)")
	journalDir := flag.String("journal", "", "journal accepted scans to this directory (off when empty)")
	maxAttempts := flag.Int("max-attempts", jobs.DefaultMaxAttempts, "attempts per scan before quarantine")
	retryBase := flag.Duration("retry-base", jobs.DefaultRetryBase, "backoff before a scan's second attempt")
	retryCap := flag.Duration("retry-cap", jobs.DefaultRetryCap, "upper bound on the retry backoff")
	journalSync := flag.Int("journal-sync", 1, "fsync the journal every N appends (-1 = never)")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log severity: debug, info, warn or error")
	slowScan := flag.Duration("slow-scan", 30*time.Second, "log a scan's full timeline when it takes at least this long (0 = off)")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return 0
	}

	logger, err := obs.NewLogger(os.Stdout, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	dlog := logger.With("component", "phpsafed")

	// Resolve the role before building anything: it decides which
	// layers this process runs. -workers is a deprecated dual-mode
	// alias (count or URL list depending on role); the split flags win
	// when both are given.
	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	if workersSet {
		dlog.Warn("-workers is deprecated; use -pool-workers (goroutine count) and -fleet-workers (worker URLs)")
	}
	splitURLs := func(s string) []string {
		var out []string
		for _, u := range strings.Split(s, ",") {
			if u = strings.TrimSpace(u); u != "" && u != "0" {
				out = append(out, strings.TrimRight(u, "/"))
			}
		}
		return out
	}
	var fleetWorkers []string
	poolWorkers := *poolWorkersFlag
	switch *role {
	case "standalone", "worker":
		if workersSet && poolWorkers == 0 {
			n, perr := strconv.Atoi(*workersFlag)
			if perr != nil || n < 0 {
				fmt.Fprintf(os.Stderr, "phpsafed: -role=%s needs -workers to be a worker count, got %q\n", *role, *workersFlag)
				return 2
			}
			poolWorkers = n
		}
	case "coordinator":
		fleetWorkers = splitURLs(*fleetWorkersFlag)
		if len(fleetWorkers) == 0 && workersSet {
			fleetWorkers = splitURLs(*workersFlag)
		}
		if len(fleetWorkers) == 0 && *journalDir == "" {
			dlog.Warn("coordinator starting with no workers; the fleet is empty until workers announce via -join")
		}
		if poolWorkers == 0 {
			// Coordinator pool slots hold network waits, not CPU: size by
			// fleet width so a small coordinator host can still keep every
			// worker's queue fed. With auto-registration the width is not
			// known up front; default wide.
			poolWorkers = 4 * len(fleetWorkers)
			if poolWorkers < 16 {
				poolWorkers = 16
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "phpsafed: unknown -role %q (want standalone, coordinator or worker)\n", *role)
		return 2
	}
	if *joinURL != "" && *role != "worker" {
		fmt.Fprintln(os.Stderr, "phpsafed: -join is only meaningful with -role=worker")
		return 2
	}
	if *joinURL != "" && *advertise == "" {
		fmt.Fprintln(os.Stderr, "phpsafed: -join requires -advertise (the URL the coordinator should dispatch to)")
		return 2
	}

	// A daemon is always instrumented: /metrics is part of the API.
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{
		Workers:    poolWorkers,
		QueueSize:  *queue,
		JobTimeout: *jobTimeout,
		Recorder:   rec,
		Logger:     logger,
	})
	cache := scancache.New(*cacheMB<<20, rec)
	incStore, err := incremental.NewStore(*incCache, rec)
	if err != nil {
		dlog.Error("incremental store failed to open", "error", err.Error())
		return 1
	}
	var journal *durable.Journal
	var replayRecords []durable.Record
	if *journalDir != "" {
		journal, replayRecords, err = durable.Open(*journalDir, durable.Options{
			SyncEvery: *journalSync,
			Recorder:  rec,
			Logger:    logger,
		})
		if err != nil {
			dlog.Error("journal failed to open", "dir", *journalDir, "error", err.Error())
			return 1
		}
		defer journal.Close()
	}
	retry := jobs.RetryPolicy{
		MaxAttempts: *maxAttempts,
		Base:        *retryBase,
		Cap:         *retryCap,
	}
	if *role == "worker" {
		// The coordinator owns the attempt budget; a worker retrying
		// internally would burn budget the coordinator cannot see.
		retry.MaxAttempts = 1
	}
	var fl *fleet.Fleet
	if *role == "coordinator" {
		// Journaled members survive a coordinator restart: merge them
		// with the configured list so the ring is rebuilt before any
		// worker re-announces.
		members := fleetWorkers
		if journal != nil {
			for _, m := range fleet.MembersFromRecords(replayRecords) {
				members = append(members, m)
			}
		}
		fl = fleet.New(fleet.Config{
			Workers:           members,
			HeartbeatInterval: *heartbeatInterval,
			ReviveAfter:       *reviveAfter,
			HedgeDelay:        *hedgeDelay,
			DispatchReplicas:  *replicas,
			ReconnectBackoff:  jobs.RetryPolicy{Base: *retryBase, Cap: *retryCap},
			Journal:           journal,
			Recorder:          rec,
			Logger:            logger.With("component", "fleet"),
		})
	}
	var wk *fleet.Worker
	if *role == "worker" {
		// The worker's journal is its dispatch journal: in-progress
		// dispatches recorded for coordinator adoption and worker-side
		// replay, not scan lifecycle durability (the coordinator owns
		// that).
		wk = fleet.NewWorker(fleet.WorkerConfig{
			Advertise: *advertise,
			Journal:   journal,
			Recorder:  rec,
			Logger:    logger,
		})
	}
	srvCfg := server.Config{
		Pool:           pool,
		Cache:          cache,
		Recorder:       rec,
		MaxUploadBytes: *maxUploadMB << 20,
		IncStore:       incStore,
		Retry:          retry,
		Budgets: analyzer.ScanOptions{
			Deadline:      *scanDeadline,
			MaxParseDepth: *maxParseDepth,
			MaxSteps:      *maxSteps,
			MaxFindings:   *maxFindings,
			FileTimeSlice: *fileSlice,
			FileWorkers:   *fileWorkers,
		},
		Logger:            logger,
		SlowScanThreshold: *slowScan,
	}
	if *role != "worker" {
		srvCfg.Journal = journal
	}
	if fl != nil {
		srvCfg.Dispatch = fl.Dispatch
		srvCfg.FleetStatus = fl.Status
		srvCfg.ExtraLiveRecords = fl.MemberRecords
	}
	if wk != nil {
		srvCfg.OnSettle = wk.OnSettle
	}
	api := server.New(srvCfg)
	if srvCfg.Journal != nil {
		resubmitted, rehydrated, quarantined := api.Replay(replayRecords)
		if resubmitted+rehydrated+quarantined > 0 {
			dlog.Info("journal replay finished",
				"resubmitted", resubmitted, "rehydrated", rehydrated, "quarantined", quarantined)
		}
	}

	var handler http.Handler = api
	if wk != nil {
		wk.Bind(api, pool)
		if journal != nil {
			if replayed := wk.Replay(replayRecords); replayed > 0 {
				dlog.Info("dispatch journal replay finished", "replayed", replayed)
			}
		}
		handler = wk.Handler()
	}
	if fl != nil {
		handler = fleet.NewCoordinatorHandler(api, fl)
		fl.Start()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *joinURL != "" {
		go fleet.Announce(ctx, nil, strings.TrimRight(*joinURL, "/"), *advertise,
			jobs.RetryPolicy{Base: *retryBase, Cap: *retryCap}, logger)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	dlog.Info("listening",
		"version", version.Version, "addr", *addr, "role", *role, "workers", pool.Workers(),
		"queue", *queue, "cache_mb", *cacheMB, "journal", *journalDir != "")

	select {
	case <-ctx.Done():
		dlog.Info("signal received, draining")
	case err := <-errCh:
		dlog.Error("listener failed", "error", err.Error())
		return 1
	}

	// Flip readiness off, stop intake, then let queued scans finish.
	api.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		dlog.Error("http shutdown failed", "error", err.Error())
	}
	if err := pool.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		dlog.Error("pool drain failed", "error", err.Error())
		return 1
	}
	if fl != nil {
		// After the pool drained no dispatches remain; stop probing.
		fl.Stop()
	}
	if srvCfg.Journal != nil {
		// A clean exit leaves a compact journal: the next start replays
		// one snapshot instead of the whole WAL.
		api.CompactJournal()
	}
	dlog.Info("drained, bye")
	return 0
}
