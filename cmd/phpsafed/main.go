// Command phpsafed runs the phpSAFE analysis pipeline as a long-lived
// HTTP service: a scan daemon with a bounded job queue, a worker pool
// and a content-addressed result cache. It is the serving counterpart
// of the one-shot phpsafe CLI — upload a plugin, poll the job, fetch
// the report in analyzer JSON, SARIF or HTML.
//
// Usage:
//
//	phpsafed [flags]
//
//	-addr ADDR          listen address (default :8477)
//	-workers N          scan workers (default NumCPU)
//	-queue N            queued-scan bound; beyond it submissions get
//	                    HTTP 429 (default 64)
//	-job-timeout D      per-scan context timeout (default 2m)
//	-cache-mb N         result-cache byte budget in MiB (default 256)
//	-max-upload-mb N    submission body limit in MiB (default 32)
//	-inc-cache DIR      persist the incremental artifact store to DIR so
//	                    per-file reuse survives restarts (the store is
//	                    always on, in memory, without the flag): when a
//	                    changed version of a previously scanned plugin
//	                    arrives, only the files whose dependency
//	                    component changed are re-analyzed
//	-scan-deadline D    cap on one scan's wall-clock budget; exceeding it
//	                    truncates the scan (0 = uncapped, the job
//	                    timeout still applies)
//	-max-parse-depth N  cap on parser nesting depth per file (0 = the
//	                    analyzer default)
//	-max-steps N        cap on interpreter steps per scan (0 = the
//	                    analyzer default)
//	-max-findings N     cap on findings per scan (0 = the analyzer
//	                    default)
//	-file-slice D       cap on wall-clock time per file; exceeding it
//	                    fails that file and the scan continues (0 = off)
//	-journal DIR        journal accepted scans to DIR so they survive a
//	                    crash: on restart the daemon replays the journal,
//	                    rehydrates finished results and resubmits
//	                    interrupted scans (off without the flag)
//	-max-attempts N     attempts per scan before it is quarantined
//	                    (default 3)
//	-retry-base D       backoff before a scan's second attempt; doubled
//	                    per further attempt with jitter (default 100ms)
//	-retry-cap D        upper bound on the backoff (default 5s)
//	-journal-sync N     fsync the journal every N appends (1 = every
//	                    append, the default; 0 keeps 1; -1 = never)
//	-log-format F       structured log encoding on stdout: text
//	                    (default) or json (one object per line)
//	-log-level L        minimum log severity: debug, info (default),
//	                    warn or error
//	-slow-scan D        log a scan's full flight-recorder timeline at
//	                    warn level when its end-to-end time reaches D
//	                    (default 30s; 0 = off)
//	-version            print the version and exit
//
// Every log line is structured (log/slog) and carries a component
// attribute; scan lifecycle lines carry scan_id, so the daemon's
// output is machine-parseable end to end. The flight recorder behind
// GET /v1/scans/{id}/trace and GET /debug/events records each scan's
// lifecycle timeline (queue wait, attempts, backoff, reuse,
// degradations, replay, settle).
//
// The four budget caps bound what POST /v1/scans requests may ask for:
// a request's deadline_ms, max_parse_depth, max_steps, max_findings
// and file_slice_ms fields can tighten a budget below the cap but
// never exceed it.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips to
// draining, the listener stops, accepted scans drain, the journal is
// compacted and closed, and only then does the process exit. A crash
// (SIGKILL, power loss) instead leaves the journal behind; the next
// start with the same -journal recovers every accepted scan.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analyzer"
	"repro/internal/durable"
	"repro/internal/incremental"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/scancache"
	"repro/internal/server"
	"repro/internal/version"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8477", "listen address")
	workers := flag.Int("workers", 0, "scan workers (0 = NumCPU)")
	queue := flag.Int("queue", 64, "max queued scans before submissions get 429")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-scan context timeout")
	cacheMB := flag.Int64("cache-mb", 256, "result cache budget in MiB")
	maxUploadMB := flag.Int64("max-upload-mb", 32, "submission body limit in MiB")
	incCache := flag.String("inc-cache", "", "persist the incremental artifact store to this directory")
	scanDeadline := flag.Duration("scan-deadline", 0, "cap on one scan's wall-clock budget (0 = uncapped)")
	maxParseDepth := flag.Int("max-parse-depth", 0, "cap on parser nesting depth per file (0 = default)")
	maxSteps := flag.Int64("max-steps", 0, "cap on interpreter steps per scan (0 = default)")
	maxFindings := flag.Int("max-findings", 0, "cap on findings per scan (0 = default)")
	fileSlice := flag.Duration("file-slice", 0, "cap on wall-clock time per file (0 = off)")
	journalDir := flag.String("journal", "", "journal accepted scans to this directory (off when empty)")
	maxAttempts := flag.Int("max-attempts", jobs.DefaultMaxAttempts, "attempts per scan before quarantine")
	retryBase := flag.Duration("retry-base", jobs.DefaultRetryBase, "backoff before a scan's second attempt")
	retryCap := flag.Duration("retry-cap", jobs.DefaultRetryCap, "upper bound on the retry backoff")
	journalSync := flag.Int("journal-sync", 1, "fsync the journal every N appends (-1 = never)")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log severity: debug, info, warn or error")
	slowScan := flag.Duration("slow-scan", 30*time.Second, "log a scan's full timeline when it takes at least this long (0 = off)")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return 0
	}

	logger, err := obs.NewLogger(os.Stdout, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	dlog := logger.With("component", "phpsafed")

	// A daemon is always instrumented: /metrics is part of the API.
	rec := obs.NewRecorder()
	pool := jobs.New(jobs.Config{
		Workers:    *workers,
		QueueSize:  *queue,
		JobTimeout: *jobTimeout,
		Recorder:   rec,
		Logger:     logger,
	})
	cache := scancache.New(*cacheMB<<20, rec)
	incStore, err := incremental.NewStore(*incCache, rec)
	if err != nil {
		dlog.Error("incremental store failed to open", "error", err.Error())
		return 1
	}
	var journal *durable.Journal
	var replayRecords []durable.Record
	if *journalDir != "" {
		journal, replayRecords, err = durable.Open(*journalDir, durable.Options{
			SyncEvery: *journalSync,
			Recorder:  rec,
			Logger:    logger,
		})
		if err != nil {
			dlog.Error("journal failed to open", "dir", *journalDir, "error", err.Error())
			return 1
		}
		defer journal.Close()
	}
	api := server.New(server.Config{
		Pool:           pool,
		Cache:          cache,
		Recorder:       rec,
		MaxUploadBytes: *maxUploadMB << 20,
		IncStore:       incStore,
		Journal:        journal,
		Retry: jobs.RetryPolicy{
			MaxAttempts: *maxAttempts,
			Base:        *retryBase,
			Cap:         *retryCap,
		},
		Budgets: analyzer.ScanOptions{
			Deadline:      *scanDeadline,
			MaxParseDepth: *maxParseDepth,
			MaxSteps:      *maxSteps,
			MaxFindings:   *maxFindings,
			FileTimeSlice: *fileSlice,
		},
		Logger:            logger,
		SlowScanThreshold: *slowScan,
	})
	if journal != nil {
		resubmitted, rehydrated, quarantined := api.Replay(replayRecords)
		if resubmitted+rehydrated+quarantined > 0 {
			dlog.Info("journal replay finished",
				"resubmitted", resubmitted, "rehydrated", rehydrated, "quarantined", quarantined)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	dlog.Info("listening",
		"version", version.Version, "addr", *addr, "workers", pool.Workers(),
		"queue", *queue, "cache_mb", *cacheMB, "journal", *journalDir != "")

	select {
	case <-ctx.Done():
		dlog.Info("signal received, draining")
	case err := <-errCh:
		dlog.Error("listener failed", "error", err.Error())
		return 1
	}

	// Flip readiness off, stop intake, then let queued scans finish.
	api.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		dlog.Error("http shutdown failed", "error", err.Error())
	}
	if err := pool.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		dlog.Error("pool drain failed", "error", err.Error())
		return 1
	}
	if journal != nil {
		// A clean exit leaves a compact journal: the next start replays
		// one snapshot instead of the whole WAL.
		api.CompactJournal()
	}
	dlog.Info("drained, bye")
	return 0
}
