package repro

// Fleet integration test: boot a real coordinator + 2 real workers as
// separate phpsafed processes, submit a batch of scans, SIGKILL one
// worker mid-scan, and require every accepted scan to settle done with
// results byte-identical to a standalone daemon — with the resubmitted
// scans' traces recording the ownership handoff.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// fleetPHP is deliberately chunky: enough statements that a worker
// with a single pool slot holds a batch in flight long enough for the
// kill to land mid-scan. Findings are deterministic.
func fleetPHP(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<?php // %s\n", name)
	b.WriteString("$base = $_GET['q'];\n")
	for i := 0; i < 150; i++ {
		fmt.Fprintf(&b, "$v%d = $base . 'x%d';\n", i, i)
	}
	b.WriteString("echo $v149;\n")
	b.WriteString("mysql_query(\"SELECT * FROM t WHERE k='\" . $_POST['user'] . \"'\");\n")
	return b.String()
}

func TestFleetKillWorkerMidScan(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	bins := binaries(t)
	daemon := filepath.Join(bins, "phpsafed")
	journal := t.TempDir()

	reserve := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	w1Addr, w2Addr, coordAddr, soloAddr := reserve(), reserve(), reserve(), reserve()

	var logs syncBuffer
	start := func(args ...string) *exec.Cmd {
		cmd := exec.Command(daemon, args...)
		cmd.Stdout = &logs
		cmd.Stderr = &logs
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting phpsafed %v: %v", args, err)
		}
		return cmd
	}
	stop := func(cmd *exec.Cmd) {
		if cmd.ProcessState != nil {
			return
		}
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
	waitHealthy := func(addr string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("daemon on %s never became healthy; logs:\n%s", addr, logs.String())
	}

	// Workers run a single pool slot each so the batch queues deep and
	// the kill lands with scans in flight and queued on the victim.
	worker1 := start("-role=worker", "-addr", w1Addr, "-workers", "1", "-queue", "32",
		"-advertise", "http://"+w1Addr)
	defer stop(worker1)
	worker2 := start("-role=worker", "-addr", w2Addr, "-workers", "1", "-queue", "32",
		"-advertise", "http://"+w2Addr)
	killed := false
	defer func() {
		if !killed {
			stop(worker2)
		}
	}()
	waitHealthy(w1Addr)
	waitHealthy(w2Addr)

	coord := start("-role=coordinator", "-addr", coordAddr,
		"-workers", "http://"+w1Addr+",http://"+w2Addr,
		"-journal", journal, "-queue", "64",
		"-heartbeat-interval", "100ms",
		"-max-attempts", "6", "-retry-base", "20ms", "-retry-cap", "200ms")
	defer stop(coord)
	waitHealthy(coordAddr)

	// Standalone baseline daemon for byte-identity.
	solo := start("-addr", soloAddr, "-workers", "1", "-queue", "64")
	defer stop(solo)
	waitHealthy(soloAddr)

	submit := func(addr, name string) string {
		t.Helper()
		body, _ := json.Marshal(map[string]any{
			"name":  name,
			"files": map[string]string{name + ".php": fleetPHP(name)},
		})
		resp, err := http.Post("http://"+addr+"/v1/scans", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("submitting %s to %s: %v", name, addr, err)
		}
		defer resp.Body.Close()
		var sc crashScanView
		if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
			t.Fatalf("decoding %s submission: %v", name, err)
		}
		if sc.ID == "" {
			t.Fatalf("submission %s returned no id (HTTP %d)", name, resp.StatusCode)
		}
		return sc.ID
	}
	waitSettled := func(addr, id string) crashScanView {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + addr + "/v1/scans/" + id)
			if err != nil {
				t.Fatalf("getting scan %s: %v", id, err)
			}
			var sc crashScanView
			err = json.NewDecoder(resp.Body).Decode(&sc)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("decoding scan %s: %v", id, err)
			}
			switch sc.Status {
			case "done", "failed", "cancelled", "quarantined":
				return sc
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("scan %s never settled; logs:\n%s", id, logs.String())
		return crashScanView{}
	}

	// Submit the batch, then kill one worker immediately: its queued
	// and running dispatches are severed mid-flight.
	names := make([]string, 0, 12)
	ids := make(map[string]string, 12)
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("fleetscan%02d", i)
		names = append(names, name)
		ids[name] = submit(coordAddr, name)
	}
	if err := worker2.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("killing worker: %v", err)
	}
	worker2.Wait()
	killed = true

	// A post-kill submission exercises the not-yet-detected-dead
	// window: its first dispatch may still route to the corpse.
	for i := 12; i < 15; i++ {
		name := fmt.Sprintf("fleetscan%02d", i)
		names = append(names, name)
		ids[name] = submit(coordAddr, name)
	}

	// Every accepted scan settles done, byte-identical to standalone.
	for _, name := range names {
		sc := waitSettled(coordAddr, ids[name])
		if sc.Status != "done" {
			t.Fatalf("scan %s = %s (%s), want done despite worker kill; logs:\n%s",
				name, sc.Status, sc.Error, logs.String())
		}
		ref := waitSettled(soloAddr, submit(soloAddr, name))
		if ref.Status != "done" {
			t.Fatalf("standalone baseline %s = %s (%s)", name, ref.Status, ref.Error)
		}
		if !bytes.Equal(sc.Result, ref.Result) {
			t.Errorf("scan %s: fleet result differs from standalone:\nfleet: %s\nsolo:  %s",
				name, sc.Result, ref.Result)
		}
	}

	// At least one scan was handed off, and its trace says so in
	// order: ownership_transferred, then resubmitted_to_peer, then the
	// dispatch to the survivor.
	handoffs := 0
	for _, name := range names {
		resp, err := http.Get("http://" + coordAddr + "/v1/scans/" + ids[name] + "/trace")
		if err != nil {
			t.Fatalf("trace %s: %v", name, err)
		}
		var tr struct {
			Events []obs.Event `json:"events"`
		}
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding trace %s: %v", name, err)
		}
		transferredAt, resubmittedAt, dispatchedAfter := -1, -1, -1
		for i, ev := range tr.Events {
			switch ev.Type {
			case "ownership_transferred":
				if transferredAt == -1 {
					transferredAt = i
				}
			case "resubmitted_to_peer":
				if resubmittedAt == -1 {
					resubmittedAt = i
				}
			case "dispatched":
				if transferredAt != -1 && dispatchedAfter == -1 && i > transferredAt {
					dispatchedAfter = i
				}
			}
		}
		if transferredAt == -1 {
			continue
		}
		handoffs++
		if !(transferredAt < resubmittedAt && resubmittedAt < dispatchedAfter) {
			t.Errorf("scan %s: handoff events out of order: transferred=%d resubmitted=%d dispatched=%d",
				name, transferredAt, resubmittedAt, dispatchedAfter)
		}
	}
	if handoffs == 0 {
		t.Errorf("no scan recorded an ownership handoff after the worker kill; logs:\n%s", logs.String())
	}

	// The coordinator's /readyz stays 200 on the surviving worker and
	// reports the corpse dead.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + coordAddr + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Fleet struct {
				Workers []struct {
					Addr  string `json:"addr"`
					State string `json:"state"`
				} `json:"workers"`
			} `json:"fleet"`
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusOK {
			t.Fatalf("coordinator /readyz = %d with a surviving worker, want 200", code)
		}
		states := map[string]string{}
		for _, w := range body.Fleet.Workers {
			states[w.Addr] = w.State
		}
		if states["http://"+w2Addr] == "dead" && states["http://"+w1Addr] == "alive" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never reported the killed worker dead: %v", states)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
